module Bitkey = Pdht_util.Bitkey
module Rng = Pdht_util.Rng

type t = {
  ids : Bitkey.t array; (* member -> id *)
  buckets : int array array array; (* member -> cpl bucket -> entries *)
  bucket_size : int;
  alpha : int;
}

let members t = Array.length t.ids
let id_of t m = t.ids.(m)

let distance key id = Bitkey.xor_distance key id

(* The [k] members closest to [key] in XOR distance.  A full scan keeps
   this exact; member counts in simulations are small enough that the
   O(n log n) cost never shows up outside construction. *)
let closest_members t key ~k =
  let n = members t in
  let k = min k n in
  if k < 0 then invalid_arg "Kademlia.closest_members: negative k";
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare (distance key t.ids.(a)) (distance key t.ids.(b))) order;
  Array.sub order 0 k

let responsible t ~online key =
  let n = members t in
  let best = ref None in
  for m = 0 to n - 1 do
    if online m then
      match !best with
      | None -> best := Some m
      | Some b -> if distance key t.ids.(m) < distance key t.ids.(b) then best := Some m
  done;
  !best

let create rng ~members:n ?(bucket_size = 8) ?(alpha = 3) () =
  if n < 1 then invalid_arg "Kademlia.create: need >= 1 member";
  if bucket_size < 1 then invalid_arg "Kademlia.create: bucket_size must be >= 1";
  if alpha < 1 then invalid_arg "Kademlia.create: alpha must be >= 1";
  let seen = Hashtbl.create n in
  let ids =
    Array.init n (fun _ ->
        let rec fresh () =
          let id = Bitkey.random rng in
          if Hashtbl.mem seen id then fresh ()
          else begin
            Hashtbl.add seen id ();
            id
          end
        in
        fresh ())
  in
  (* Global construction: reservoir-sample up to [bucket_size] members
     into each common-prefix-length bucket.  One O(n^2) pass with a
     cheap inner body; fine at simulation scale. *)
  let buckets =
    Array.init n (fun m ->
        let mine = ids.(m) in
        let per_bucket = Array.make Bitkey.width [] in
        let counts = Array.make Bitkey.width 0 in
        for other = 0 to n - 1 do
          if other <> m then begin
            let cpl = Bitkey.common_prefix_length mine ids.(other) in
            let b = min cpl (Bitkey.width - 1) in
            counts.(b) <- counts.(b) + 1;
            if List.length per_bucket.(b) < bucket_size then
              per_bucket.(b) <- other :: per_bucket.(b)
            else if Rng.int rng counts.(b) < bucket_size then begin
              (* Reservoir replacement keeps bucket membership uniform
                 among eligible members. *)
              let keep = List.filteri (fun i _ -> i > 0) per_bucket.(b) in
              per_bucket.(b) <- other :: keep
            end
          end
        done;
        Array.map Array.of_list per_bucket)
  in
  { ids; buckets; bucket_size; alpha }

(* A member's routing-table answer to "who do you know near [key]?" *)
let closest_in_table t member key ~k =
  let entries =
    Array.to_list t.buckets.(member) |> List.concat_map Array.to_list
  in
  let sorted =
    List.sort (fun a b -> compare (distance key t.ids.(a)) (distance key t.ids.(b))) entries
  in
  List.filteri (fun i _ -> i < k) sorted

type outcome = { responsible : int option; messages : int; hops : int }

let lookup ?span ?deliver t rng ~online ~source ~key =
  ignore rng;
  if source < 0 || source >= members t then invalid_arg "Kademlia.lookup: bad source";
  if not (online source) then { responsible = None; messages = 0; hops = 0 }
  else
    match responsible t ~online key with
    | None -> { responsible = None; messages = 0; hops = 0 }
    | Some target ->
        let messages = ref 0 in
        let hops = ref 0 in
        let contacted = Hashtbl.create 64 in
        let dead = Hashtbl.create 16 in
        let candidates = Hashtbl.create 64 in
        let add_candidate m = if not (Hashtbl.mem candidates m) then Hashtbl.replace candidates m () in
        Hashtbl.replace contacted source ();
        List.iter add_candidate (closest_in_table t source key ~k:t.bucket_size);
        let best_online = ref (Some source) in
        let improves m =
          match !best_online with
          | None -> true
          | Some b -> distance key t.ids.(m) < distance key t.ids.(b)
        in
        let finished = ref (source = target) in
        while not !finished do
          (* Up to alpha closest uncontacted, un-dead candidates. *)
          let pending =
            Hashtbl.fold
              (fun m () acc ->
                if Hashtbl.mem contacted m || Hashtbl.mem dead m then acc else m :: acc)
              candidates []
            |> List.sort (fun a b -> compare (distance key t.ids.(a)) (distance key t.ids.(b)))
          in
          match pending with
          | [] -> finished := true
          | _ :: _ ->
              incr hops;
              let batch = List.filteri (fun i _ -> i < t.alpha) pending in
              List.iter
                (fun m ->
                  incr messages;
                  (* The iterative caller contacts each candidate
                     directly; under the network model that contact is
                     one RPC (consulted only for live candidates —
                     offline ones already pay their timeout message),
                     and an exhausted retry budget makes the candidate
                     look dead — Kademlia's native tolerance to
                     unresponsive nodes, no abort needed. *)
                  if
                    online m
                    && (match deliver with None -> true | Some d -> d ~span ~src:source ~dst:m)
                  then begin
                    Hashtbl.replace contacted m ();
                    if improves m then best_online := Some m;
                    List.iter add_candidate (closest_in_table t m key ~k:t.bucket_size)
                  end
                  else Hashtbl.replace dead m ())
                batch;
              (match !best_online with
              | Some b when b = target -> finished := true
              | Some _ | None -> ())
        done;
        let result = match !best_online with Some b when b = target -> Some target | _ -> None in
        { responsible = result; messages = !messages; hops = !hops }

let bucket_count t m =
  Array.fold_left (fun acc b -> if Array.length b > 0 then acc + 1 else acc) 0 t.buckets.(m)

let routing_table_size t m =
  Array.fold_left (fun acc b -> acc + Array.length b) 0 t.buckets.(m)

(* Crash-stop state loss: empty every k-bucket of [peer].  Lookups from
   the member then start with no candidates and fail immediately (miss
   path); [probe_and_repair] only touches non-empty buckets, so only
   {!rebuild_routes} restores the table. *)
let forget_routes t ~peer =
  let buckets = t.buckets.(peer) in
  for b = 0 to Array.length buckets - 1 do
    buckets.(b) <- [||]
  done

(* Rejoin: repopulate [peer]'s k-buckets with the construction-time
   reservoir pass (uniform bucket membership among eligible members).
   One message per entry learned — the FIND_NODE traffic of a Kademlia
   join. *)
let rebuild_routes t rng ~peer =
  let n = members t in
  let mine = t.ids.(peer) in
  let per_bucket = Array.make Bitkey.width [] in
  let counts = Array.make Bitkey.width 0 in
  for other = 0 to n - 1 do
    if other <> peer then begin
      let cpl = Bitkey.common_prefix_length mine t.ids.(other) in
      let b = min cpl (Bitkey.width - 1) in
      counts.(b) <- counts.(b) + 1;
      if List.length per_bucket.(b) < t.bucket_size then
        per_bucket.(b) <- other :: per_bucket.(b)
      else if Rng.int rng counts.(b) < t.bucket_size then begin
        let keep = List.filteri (fun i _ -> i > 0) per_bucket.(b) in
        per_bucket.(b) <- other :: keep
      end
    end
  done;
  let messages = ref 0 in
  Array.iteri
    (fun b entries ->
      let arr = Array.of_list entries in
      t.buckets.(peer).(b) <- arr;
      messages := !messages + Array.length arr)
    per_bucket;
  !messages

let probe_and_repair t rng ~online ~peer ~probes =
  if probes < 0 then invalid_arg "Kademlia.probe_and_repair: negative probes";
  let nonempty =
    Array.to_list (Array.mapi (fun i b -> (i, b)) t.buckets.(peer))
    |> List.filter (fun (_, b) -> Array.length b > 0)
    |> Array.of_list
  in
  if Array.length nonempty = 0 then 0
  else begin
    let mine = t.ids.(peer) in
    for _ = 1 to probes do
      let b_idx, bucket = nonempty.(Rng.int rng (Array.length nonempty)) in
      let i = Rng.int rng (Array.length bucket) in
      if not (online bucket.(i)) then begin
        (* Replace with a random online member sharing the same bucket
           (common-prefix-length) if one exists; bounded sampling keeps
           the repair cheap. *)
        let n = members t in
        let rec attempt k =
          if k = 0 then ()
          else
            let cand = Rng.int rng n in
            let cpl = Bitkey.common_prefix_length mine t.ids.(cand) in
            let cand_bucket = min cpl (Bitkey.width - 1) in
            if cand <> peer && online cand && cand_bucket = b_idx then bucket.(i) <- cand
            else attempt (k - 1)
        in
        attempt 30
      end
    done;
    probes
  end
