(** Routing-table maintenance by probing ([MaCa03], paper Section
    3.3.1).

    Each online DHT member probes random routing entries at a rate
    proportional to its routing-table size: [env * log2 members] probe
    messages per peer per second, where [env] is the environment
    constant the paper derives from [MaCa03]'s Pastry study on a 17,000
    peer Gnutella trace ([env = 1/log2 17000 ~ 1/14], giving about one
    message per peer per second).  Probes that discover an offline entry
    repair it for free (repair data rides on other traffic).

    Attached to an engine, the process charges its traffic to a
    {!Pdht_sim.Metrics} account under [Maintenance]. *)

val probes_per_peer_per_second : env:float -> members:int -> float
(** [env * log2 members] — the model's per-peer maintenance rate. *)

val env_from_trace : maintenance_rate:float -> members:int -> float
(** Inverse: the [env] that yields [maintenance_rate] probes per peer
    per second in a network of [members] (paper Section 4 computes
    [env = 1 / log2 17000] from rate 1.0). *)

val attach :
  ?obs:Pdht_obs.Context.t ->
  ?refresh_every:float ->
  Pdht_sim.Engine.t ->
  dht:Dht.t ->
  rng:Pdht_util.Rng.t ->
  online:(int -> bool) ->
  metrics:Pdht_sim.Metrics.t ->
  env:float ->
  interval:float ->
  unit
(** Every [interval] seconds, every online member sends its accumulated
    probe budget ([env * log2 members * interval] probes, with the
    fractional part carried stochastically) and repairs what it finds
    stale.  Requires [interval > 0.].

    With [refresh_every], additionally runs {!Dht.refresh_sweep} every
    [refresh_every] seconds — the Kademlia bucket-refresh pass over
    stale ranges — charging its messages to the same [Maintenance]
    account (and counting them in ["maintenance.refresh_messages"] when
    observed).  Requires [refresh_every > 0.] when given; a no-op on
    backends without live routing.

    With [obs], each tick also records the
    ["maintenance.messages_per_tick"] histogram and emits one
    [Maintenance] trace event carrying the tick's message count. *)

val cost_per_key_per_second :
  env:float -> members:int -> indexed_keys:int -> float
(** The model's Eq. 8: [cRtn = env * log2(members) * members /
    indexed_keys].  @raise Invalid_argument when [indexed_keys <= 0]. *)
