module Session = Pdht_dist.Session

type callback = peer:int -> now_online:bool -> time:float -> unit

type t = {
  rng : Pdht_util.Rng.t option; (* None = static, always online *)
  online : bool array;
  mean_uptime : float;
  mean_downtime : float;
  up_dist : Session.dist;
  down_dist : Session.dist;
  mutable online_count : int;
  mutable session_changes : int;
  (* Growable array, fired in registration order.  The old list-append
     registration ([callbacks @ [f]]) was O(n^2) across n registrations
     — quadratic in peers for per-peer rejoin hooks. *)
  mutable callbacks : callback array;
  mutable callback_count : int;
}

let make ~rng ~online ~mean_uptime ~mean_downtime ~up_dist ~down_dist =
  let online_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 online in
  { rng; online; mean_uptime; mean_downtime; up_dist; down_dist; online_count;
    session_changes = 0; callbacks = [||]; callback_count = 0 }

let create rng ~peers ~mean_uptime ~mean_downtime ~initially_online_fraction =
  if peers < 1 then invalid_arg "Churn.create: need >= 1 peer";
  if not (mean_uptime > 0. && mean_downtime > 0.) then
    invalid_arg "Churn.create: durations must be positive";
  if initially_online_fraction < 0. || initially_online_fraction > 1. then
    invalid_arg "Churn.create: fraction outside [0,1]";
  let online =
    Array.init peers (fun _ -> Pdht_util.Rng.bernoulli rng ~p:initially_online_fraction)
  in
  make ~rng:(Some rng) ~online ~mean_uptime ~mean_downtime
    ~up_dist:Session.Exponential ~down_dist:Session.Exponential

let create_spec rng ~peers (spec : Session.spec) =
  if peers < 1 then invalid_arg "Churn.create_spec: need >= 1 peer";
  let spec =
    match Session.validate spec with
    | Ok s -> s
    | Error msg -> invalid_arg ("Churn.create_spec: " ^ msg)
  in
  let online =
    Array.init peers (fun _ ->
        Pdht_util.Rng.bernoulli rng ~p:spec.Session.initially_online_fraction)
  in
  make ~rng:(Some rng) ~online ~mean_uptime:spec.Session.mean_uptime
    ~mean_downtime:spec.Session.mean_downtime ~up_dist:spec.Session.up
    ~down_dist:spec.Session.down

let always_online ~peers =
  if peers < 1 then invalid_arg "Churn.always_online: need >= 1 peer";
  make ~rng:None ~online:(Array.make peers true) ~mean_uptime:1. ~mean_downtime:1.
    ~up_dist:Session.Exponential ~down_dist:Session.Exponential

let peers t = Array.length t.online
let online t p = t.online.(p)
let online_count t = t.online_count

let availability t =
  match t.rng with
  | None -> 1.
  | Some _ -> t.mean_uptime /. (t.mean_uptime +. t.mean_downtime)

let on_toggle t f =
  if t.callback_count = Array.length t.callbacks then begin
    let bigger = Array.make (max 4 (2 * t.callback_count)) f in
    Array.blit t.callbacks 0 bigger 0 t.callback_count;
    t.callbacks <- bigger
  end;
  t.callbacks.(t.callback_count) <- f;
  t.callback_count <- t.callback_count + 1

let session_changes t = t.session_changes

let toggle t peer time =
  let now_online = not t.online.(peer) in
  t.online.(peer) <- now_online;
  t.online_count <- t.online_count + (if now_online then 1 else -1);
  t.session_changes <- t.session_changes + 1;
  for i = 0 to t.callback_count - 1 do
    t.callbacks.(i) ~peer ~now_online ~time
  done

let instrument t (obs : Pdht_obs.Context.t) =
  let module R = Pdht_obs.Registry in
  let registry = obs.Pdht_obs.Context.registry in
  let tracer = obs.Pdht_obs.Context.tracer in
  let session_lengths = R.histogram registry "churn.session_length" in
  let transitions = R.counter registry "churn.transitions" in
  let online_gauge = R.gauge registry "churn.online_count" in
  R.set_gauge online_gauge (float_of_int t.online_count);
  (* Time of each peer's previous transition; the run starts at 0, so
     the first session of every peer is measured from there. *)
  let last_toggle = Array.make (peers t) 0. in
  on_toggle t (fun ~peer ~now_online ~time ->
      R.incr transitions 1;
      R.set_gauge online_gauge (float_of_int t.online_count);
      let session = time -. last_toggle.(peer) in
      last_toggle.(peer) <- time;
      if session >= 0. then Pdht_obs.Histogram.record session_lengths session;
      if Pdht_obs.Tracer.active tracer Pdht_obs.Event.Churn then
        Pdht_obs.Tracer.emit tracer
          (Pdht_obs.Event.make ~time ~peer
             ~detail:(if now_online then "online" else "offline")
             Pdht_obs.Event.Churn))

let attach t engine =
  match t.rng with
  | None -> ()
  | Some rng ->
      let next_duration peer =
        (* The exponential legs keep the exact historical draw (one
           uniform through [Rng.exponential]), so pre-existing runs
           stay byte-identical; heavy-tailed legs go through
           {!Pdht_dist.Session.draw}. *)
        if t.online.(peer) then
          match t.up_dist with
          | Session.Exponential ->
              Pdht_util.Rng.exponential rng ~rate:(1. /. t.mean_uptime)
          | d -> Session.draw rng d ~mean:t.mean_uptime
        else
          match t.down_dist with
          | Session.Exponential ->
              Pdht_util.Rng.exponential rng ~rate:(1. /. t.mean_downtime)
          | d -> Session.draw rng d ~mean:t.mean_downtime
      in
      let rec schedule_toggle peer delay =
        Pdht_sim.Engine.schedule engine ~delay (fun eng ->
            toggle t peer (Pdht_sim.Engine.now eng);
            schedule_toggle peer (next_duration peer))
      in
      for peer = 0 to peers t - 1 do
        schedule_toggle peer (next_duration peer)
      done
