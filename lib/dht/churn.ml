type t = {
  rng : Pdht_util.Rng.t option; (* None = static, always online *)
  online : bool array;
  mean_uptime : float;
  mean_downtime : float;
  mutable online_count : int;
  mutable session_changes : int;
  mutable callbacks : (peer:int -> now_online:bool -> time:float -> unit) list;
}

let create rng ~peers ~mean_uptime ~mean_downtime ~initially_online_fraction =
  if peers < 1 then invalid_arg "Churn.create: need >= 1 peer";
  if not (mean_uptime > 0. && mean_downtime > 0.) then
    invalid_arg "Churn.create: durations must be positive";
  if initially_online_fraction < 0. || initially_online_fraction > 1. then
    invalid_arg "Churn.create: fraction outside [0,1]";
  let online =
    Array.init peers (fun _ -> Pdht_util.Rng.bernoulli rng ~p:initially_online_fraction)
  in
  let online_count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 online in
  { rng = Some rng; online; mean_uptime; mean_downtime; online_count;
    session_changes = 0; callbacks = [] }

let always_online ~peers =
  if peers < 1 then invalid_arg "Churn.always_online: need >= 1 peer";
  { rng = None; online = Array.make peers true; mean_uptime = 1.; mean_downtime = 1.;
    online_count = peers; session_changes = 0; callbacks = [] }

let peers t = Array.length t.online
let online t p = t.online.(p)
let online_count t = t.online_count

let availability t =
  match t.rng with
  | None -> 1.
  | Some _ -> t.mean_uptime /. (t.mean_uptime +. t.mean_downtime)

let on_toggle t f = t.callbacks <- t.callbacks @ [ f ]
let session_changes t = t.session_changes

let toggle t peer time =
  let now_online = not t.online.(peer) in
  t.online.(peer) <- now_online;
  t.online_count <- t.online_count + (if now_online then 1 else -1);
  t.session_changes <- t.session_changes + 1;
  List.iter (fun f -> f ~peer ~now_online ~time) t.callbacks

let instrument t (obs : Pdht_obs.Context.t) =
  let module R = Pdht_obs.Registry in
  let registry = obs.Pdht_obs.Context.registry in
  let tracer = obs.Pdht_obs.Context.tracer in
  let session_lengths = R.histogram registry "churn.session_length" in
  let transitions = R.counter registry "churn.transitions" in
  let online_gauge = R.gauge registry "churn.online_count" in
  R.set_gauge online_gauge (float_of_int t.online_count);
  (* Time of each peer's previous transition; the run starts at 0, so
     the first session of every peer is measured from there. *)
  let last_toggle = Array.make (peers t) 0. in
  on_toggle t (fun ~peer ~now_online ~time ->
      R.incr transitions 1;
      R.set_gauge online_gauge (float_of_int t.online_count);
      let session = time -. last_toggle.(peer) in
      last_toggle.(peer) <- time;
      if session >= 0. then Pdht_obs.Histogram.record session_lengths session;
      if Pdht_obs.Tracer.active tracer Pdht_obs.Event.Churn then
        Pdht_obs.Tracer.emit tracer
          (Pdht_obs.Event.make ~time ~peer
             ~detail:(if now_online then "online" else "offline")
             Pdht_obs.Event.Churn))

let attach t engine =
  match t.rng with
  | None -> ()
  | Some rng ->
      let next_duration peer =
        let rate =
          if t.online.(peer) then 1. /. t.mean_uptime else 1. /. t.mean_downtime
        in
        Pdht_util.Rng.exponential rng ~rate
      in
      let rec schedule_toggle peer delay =
        Pdht_sim.Engine.schedule engine ~delay (fun eng ->
            toggle t peer (Pdht_sim.Engine.now eng);
            schedule_toggle peer (next_duration peer))
      in
      for peer = 0 to peers t - 1 do
        schedule_toggle peer (next_duration peer)
      done
