let hardware_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())
let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let try_map ?jobs ~f tasks =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.try_map: jobs must be >= 1";
  let run i = try Ok (f i tasks.(i)) with exn -> Error exn in
  (* Parallelism only pays when the batch has at least two tasks and the
     hardware has cores to run them on.  Oversubscribing domains past the
     physical core count is strictly worse than sequential in OCaml 5:
     every minor GC is a stop-the-world barrier across all domains, so
     descheduled domains stall the running one.  The caller's [jobs] is a
     ceiling, not a promise. *)
  let workers = Stdlib.min (Stdlib.min jobs n) (hardware_jobs ()) in
  if workers <= 1 then Array.init n run
  else begin
    (* Work-stealing by atomic counter: workers grab the next unclaimed
       index until the batch is drained.  The [Atomic.get] pre-check
       bounds the counter at [n + workers]: each worker overshoots at
       most once, instead of spinning the counter arbitrarily far past
       the batch end. *)
    let next = Atomic.make 0 in
    (* Each worker accumulates [(index, outcome)] pairs into its own
       freshly-allocated list, in its own minor heap.  Workers share
       nothing but the claim counter while running — no false sharing on
       a common results array — and the coordinator merges the buffers
       after the joins, when there is no concurrency left. *)
    let worker () =
      let rec loop acc =
        if Atomic.get next >= n then acc
        else
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then acc else loop ((i, run i) :: acc)
      in
      loop []
    in
    (* The calling domain is worker zero: spawn only [workers - 1]
       domains and do a full share of the batch here instead of blocking
       in [join] while others work. *)
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    let own = worker () in
    let results = Array.make n None in
    let merge buf = List.iter (fun (i, outcome) -> results.(i) <- Some outcome) buf in
    merge own;
    Array.iter (fun d -> merge (Domain.join d)) domains;
    Array.map
      (function
        | Some outcome -> outcome
        | None -> assert false (* every index below [n] was claimed *))
      results
  end

let map ?jobs ~f tasks =
  let outcomes = try_map ?jobs ~f tasks in
  Array.map (function Ok v -> v | Error exn -> raise exn) outcomes

let map_list ?jobs ~f tasks =
  Array.to_list (map ?jobs ~f (Array.of_list tasks))
