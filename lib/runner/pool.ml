let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let try_map ?jobs ~f tasks =
  let n = Array.length tasks in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.try_map: jobs must be >= 1";
  let run i = try Ok (f i tasks.(i)) with exn -> Error exn in
  let jobs = Stdlib.min jobs n in
  if jobs <= 1 then Array.init n run
  else begin
    let results = Array.make n None in
    (* Work-stealing by atomic counter: domains grab the next unclaimed
       index until the batch is drained.  Which domain runs which task
       is racy, but each slot is written exactly once and results are
       read back by index, so the output order is the input order. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (run i);
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some outcome -> outcome
        | None -> assert false (* every index below [n] was claimed *))
      results
  end

let map ?jobs ~f tasks =
  let outcomes = try_map ?jobs ~f tasks in
  Array.map (function Ok v -> v | Error exn -> raise exn) outcomes

let map_list ?jobs ~f tasks =
  Array.to_list (map ?jobs ~f (Array.of_list tasks))
