(** Domain-based worker pool for batches of independent tasks.

    The pool runs a fixed function over an indexed batch of inputs on
    [jobs] domains and hands the results back in input order, so callers
    observe exactly the sequence a plain [List.map] would have produced.
    Determinism is the caller's half of the contract: each task must
    derive all of its randomness from its own index (see
    {!Pdht_util.Rng.of_stream}) and touch no shared mutable state, and
    then [run ~jobs:1] and [run ~jobs:n] are indistinguishable.

    With [jobs = 1] (or a single-element batch) everything executes
    inline on the calling domain — no spawning, so the sequential path
    stays exactly as debuggable as before the pool existed.

    The effective worker count is the minimum of [jobs], the batch size,
    and {!hardware_jobs}.  Requesting [-j 8] on a single-core machine
    therefore runs inline rather than thrashing: in OCaml 5 every minor
    collection is a stop-the-world barrier across all domains, so
    oversubscribed domains do not merely fail to help — they actively
    stall each other.  Because task results are deterministic in the
    task index, the clamp changes scheduling only, never output.

    When the pool does go parallel, the calling domain works too
    ([workers - 1] domains are spawned), and each worker accumulates
    its results in a private buffer that the coordinator merges after
    the joins — workers share nothing but an atomic claim counter, so
    there is no false sharing on a common results array. *)

val hardware_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1: the
    most domains worth running at once on this machine. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1:
    leave one core for the coordinating domain, but never refuse to
    work on a single-core machine. *)

val try_map : ?jobs:int -> f:(int -> 'a -> 'b) -> 'a array -> ('b, exn) result array
(** [try_map ?jobs ~f tasks] applies [f index task] to every task and
    returns the outcomes in input order.  A task that raises is captured
    as [Error exn] in its slot; the other tasks still run to completion,
    so one bad run in a batch never aborts its siblings.  [jobs]
    defaults to {!default_jobs} and is additionally clamped to the batch
    size.
    @raise Invalid_argument when [jobs < 1]. *)

val map : ?jobs:int -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!try_map}, but re-raises the first (lowest-index) captured
    exception after the whole batch has finished. *)

val map_list : ?jobs:int -> f:(int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)
