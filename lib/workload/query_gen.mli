(** Query stream generation.

    Every peer issues queries at rate [f_qry]; the queried key is drawn
    from a rank distribution (Zipf in the paper) mapped onto key
    identities by a {!Pdht_dist.Popularity_shift} so that which keys are
    popular can change mid-run.

    The aggregate of [num_peers] independent Poisson processes of rate
    [f_qry] is one Poisson process of rate [num_peers * f_qry] whose
    events are assigned to uniform random peers — generating that
    aggregate directly keeps the event queue small. *)

type query = { time : float; peer : int; key_index : int; rank : int }

type t

val create :
  Pdht_util.Rng.t ->
  num_peers:int ->
  f_qry:float ->
  ?profile:Rate_profile.t ->
  distribution:Pdht_dist.Discrete.t ->
  shift:Pdht_dist.Popularity_shift.t ->
  unit ->
  t
(** The distribution's rank count must equal the shift's key count.
    When [profile] is given it overrides [f_qry] with a time-varying
    per-peer rate (sampled by thinning against the profile's maximum
    rate). *)

val next : t -> after:float -> query
(** The next query strictly after [after] (exponential inter-arrival). *)

val stream : t -> from:float -> until:float -> query Seq.t
(** Lazy stream of queries in [(from, until\]]. *)

val attach :
  t ->
  Pdht_sim.Engine.t ->
  until:float ->
  handler:(Pdht_sim.Engine.t -> peer:int -> key_index:int -> rank:int -> unit) ->
  unit
(** Schedule the whole stream on an engine; each query fires [handler]
    at its time (so [Engine.now] inside the handler is the query time).
    Events are streamed from the RNG one at a time through a single
    re-scheduled closure — no per-event record or closure is ever
    built, so attached-workload memory is O(1) in event count. *)

val expected_rate : t -> float
(** [num_peers * f_qry] queries per second ([f_qry] = the profile's peak
    rate when a profile is set). *)
