type query_distribution =
  | Zipf of float
  | Uniform
  | Hot_cold of { hot : int; hot_mass : float }

type shift_plan =
  | No_shift
  | Swap_halves_at of float
  | Rotate of { times : float list; offset : int }

type rate_plan =
  | Steady
  | Diurnal of { calm_f_qry : float; period : float; busy_fraction : float }

type churn_plan =
  | No_churn
  | Exponential_sessions of {
      mean_uptime : float;
      mean_downtime : float;
      initially_online_fraction : float;
    }
  | Sessions of Pdht_dist.Session.spec

type t = {
  name : string;
  num_peers : int;
  keys : int;
  f_qry : float;
  rate : rate_plan;
  distribution : query_distribution;
  shift : shift_plan;
  churn : churn_plan;
  update_mean_lifetime : float option;
  duration : float;
  seed : int;
}

let news_default =
  {
    name = "news-scaled";
    num_peers = 1_000;
    keys = 2_000;
    f_qry = 1. /. 30.;
    rate = Steady;
    distribution = Zipf 1.2;
    shift = No_shift;
    churn = No_churn;
    update_mean_lifetime = Some 86_400.;
    duration = 3_600.;
    seed = 42;
  }

let with_scale t ~peers ~keys = { t with num_peers = peers; keys }

let distribution t =
  match t.distribution with
  | Zipf alpha -> Pdht_dist.Discrete.zipf ~n:t.keys ~alpha
  | Uniform -> Pdht_dist.Discrete.uniform ~n:t.keys
  | Hot_cold { hot; hot_mass } -> Pdht_dist.Discrete.hot_cold ~n:t.keys ~hot ~hot_mass

let rate_profile t =
  match t.rate with
  | Steady -> Rate_profile.constant t.f_qry
  | Diurnal { calm_f_qry; period; busy_fraction } ->
      Rate_profile.diurnal ~busy:t.f_qry ~calm:calm_f_qry ~period ~busy_fraction

let popularity_shift t =
  match t.shift with
  | No_shift -> Pdht_dist.Popularity_shift.static ~n:t.keys
  | Swap_halves_at time -> Pdht_dist.Popularity_shift.swap_halves_at ~n:t.keys ~time
  | Rotate { times; offset } ->
      Pdht_dist.Popularity_shift.rotate_at ~n:t.keys ~shift_times:times ~offset

let total_query_rate t = float_of_int t.num_peers *. t.f_qry
let expected_queries t = total_query_rate t *. t.duration

let validate t =
  let check cond msg rest = if cond then rest () else Error msg in
  check (t.num_peers >= 2) "num_peers must be >= 2" @@ fun () ->
  check (t.keys >= 1) "keys must be >= 1" @@ fun () ->
  check (t.f_qry > 0.) "f_qry must be positive" @@ fun () ->
  check
    (match t.rate with
    | Steady -> true
    | Diurnal { calm_f_qry; period; busy_fraction } ->
        calm_f_qry > 0. && period > 0. && busy_fraction > 0. && busy_fraction < 1.)
    "invalid rate plan"
  @@ fun () ->
  check (t.duration > 0.) "duration must be positive" @@ fun () ->
  check
    (match t.update_mean_lifetime with None -> true | Some l -> l > 0.)
    "update_mean_lifetime must be positive"
  @@ fun () ->
  check
    (match t.churn with
    | No_churn -> true
    | Exponential_sessions { mean_uptime; mean_downtime; initially_online_fraction } ->
        mean_uptime > 0. && mean_downtime > 0.
        && initially_online_fraction >= 0.
        && initially_online_fraction <= 1.
    | Sessions spec -> Result.is_ok (Pdht_dist.Session.validate spec))
    "invalid churn plan"
  @@ fun () -> Ok t

let presets =
  let base = { news_default with num_peers = 800; keys = 1_600; duration = 2_400. } in
  [
    ( "news",
      "the paper's news system at 1/25 scale: Zipf(1.2) queries, daily updates",
      { base with name = "news" } );
    ( "flash-crowd",
      "breaking news halfway: the hot and cold key-space halves swap",
      { base with name = "flash-crowd"; shift = Swap_halves_at 1_200. } );
    ( "churn-storm",
      "transient clients: 10-minute sessions at 60% availability",
      {
        base with
        name = "churn-storm";
        churn =
          Exponential_sessions
            { mean_uptime = 600.; mean_downtime = 400.; initially_online_fraction = 0.6 };
      } );
    ( "busy-day",
      "the paper's busy/calm cycle: per-peer rate swings 1/30 <-> 1/600",
      {
        base with
        name = "busy-day";
        duration = 4_800.;
        rate = Diurnal { calm_f_qry = 1. /. 600.; period = 1_600.; busy_fraction = 0.5 };
      } );
    ( "uniform-stress",
      "no skew to exploit: uniform queries force a near-full index",
      { base with name = "uniform-stress"; distribution = Uniform } );
  ]

let preset name =
  List.find_map (fun (n, _, s) -> if String.equal n name then Some s else None) presets

let pp ppf t =
  let dist =
    match t.distribution with
    | Zipf a -> Printf.sprintf "zipf(%g)" a
    | Uniform -> "uniform"
    | Hot_cold { hot; hot_mass } -> Printf.sprintf "hot-cold(%d,%g)" hot hot_mass
  in
  let shift =
    match t.shift with
    | No_shift -> "static"
    | Swap_halves_at time -> Printf.sprintf "swap-halves@%g" time
    | Rotate { times; offset } ->
        Printf.sprintf "rotate(+%d)x%d" offset (List.length times)
  in
  let churn =
    match t.churn with
    | No_churn -> "none"
    | Exponential_sessions { mean_uptime; mean_downtime; _ } ->
        Printf.sprintf "exp(up=%g,down=%g)" mean_uptime mean_downtime
    | Sessions spec -> Pdht_dist.Session.to_string spec
  in
  Format.fprintf ppf
    "@[<v>scenario %s: peers=%d keys=%d fQry=%g dist=%s shift=%s churn=%s duration=%gs seed=%d@]"
    t.name t.num_peers t.keys t.f_qry dist shift churn t.duration t.seed
