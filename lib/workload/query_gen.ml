type query = { time : float; peer : int; key_index : int; rank : int }

type t = {
  rng : Pdht_util.Rng.t;
  num_peers : int;
  profile : Rate_profile.t;
  distribution : Pdht_dist.Discrete.t;
  shift : Pdht_dist.Popularity_shift.t;
  (* Streaming state: the single pending event, held flat so the
     generator's memory is O(1) in event count and a scheduled run
     allocates nothing per query — ints in mutable fields, the time in
     a one-element float array (a mutable float field in this mixed
     record would box on every store). *)
  pending_time : float array;
  mutable pending_peer : int;
  mutable pending_key : int;
  mutable pending_rank : int;
}

let create rng ~num_peers ~f_qry ?profile ~distribution ~shift () =
  if num_peers < 1 then invalid_arg "Query_gen.create: need >= 1 peer";
  if not (f_qry > 0.) then invalid_arg "Query_gen.create: f_qry must be positive";
  if Pdht_dist.Discrete.n distribution <> Pdht_dist.Popularity_shift.n shift then
    invalid_arg "Query_gen.create: distribution and shift disagree on key count";
  let profile =
    match profile with Some p -> p | None -> Rate_profile.constant f_qry
  in
  {
    rng;
    num_peers;
    profile;
    distribution;
    shift;
    pending_time = Array.make 1 0.;
    pending_peer = 0;
    pending_key = 0;
    pending_rank = 0;
  }

let expected_rate t = float_of_int t.num_peers *. Rate_profile.max_rate t.profile

(* Non-homogeneous Poisson sampling by thinning: draw candidates at the
   peak aggregate rate, accept each with probability rate(t) / peak.
   Draws into the pending fields — the one generation path both the
   record API ([next]/[stream]) and the zero-alloc [attach] share, so
   they consume the RNG identically. *)
let draw_pending t ~after =
  let peak = expected_rate t in
  let rec draw after =
    let gap = Pdht_util.Rng.exponential t.rng ~rate:peak in
    let time = after +. gap in
    let accept_probability =
      float_of_int t.num_peers *. Rate_profile.rate_at t.profile time /. peak
    in
    if Pdht_util.Rng.unit_float t.rng < accept_probability then time else draw time
  in
  let time = draw after in
  t.pending_time.(0) <- time;
  t.pending_peer <- Pdht_util.Rng.int t.rng t.num_peers;
  t.pending_rank <- Pdht_dist.Discrete.sample t.distribution t.rng;
  t.pending_key <-
    Pdht_dist.Popularity_shift.key_of_rank t.shift ~time t.pending_rank

let next t ~after =
  draw_pending t ~after;
  {
    time = t.pending_time.(0);
    peer = t.pending_peer;
    key_index = t.pending_key;
    rank = t.pending_rank;
  }

let stream t ~from ~until =
  let rec continue after () =
    let q = next t ~after in
    if q.time > until then Seq.Nil else Seq.Cons (q, continue q.time)
  in
  continue from

(* One closure, re-scheduled for every event: each firing reads the
   pending event out of [t], runs the handler, then draws the next
   event in place — nothing is allocated per query no matter how many
   the run generates. *)
let attach t engine ~until ~handler =
  let rec fire eng =
    let time = t.pending_time.(0) in
    handler eng ~peer:t.pending_peer ~key_index:t.pending_key
      ~rank:t.pending_rank;
    advance time
  and advance after =
    draw_pending t ~after;
    if t.pending_time.(0) <= until then
      Pdht_sim.Engine.schedule_at engine ~time:t.pending_time.(0) fire
  in
  advance (Pdht_sim.Engine.now engine)
