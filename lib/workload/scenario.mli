(** Composed workload descriptors.

    A scenario fixes everything about a run except the indexing strategy
    under test, so strategies are compared on identical workloads. *)

type query_distribution =
  | Zipf of float                         (** exponent *)
  | Uniform
  | Hot_cold of { hot : int; hot_mass : float }

type shift_plan =
  | No_shift
  | Swap_halves_at of float               (** drastic mid-run shift *)
  | Rotate of { times : float list; offset : int }

type rate_plan =
  | Steady
      (** constant per-peer rate [f_qry] *)
  | Diurnal of { calm_f_qry : float; period : float; busy_fraction : float }
      (** the paper's busy/calm day: [f_qry] during the busy fraction of
          each period, [calm_f_qry] otherwise *)

type churn_plan =
  | No_churn
  | Exponential_sessions of {
      mean_uptime : float;
      mean_downtime : float;
      initially_online_fraction : float;
    }  (** the classic memoryless session model *)
  | Sessions of Pdht_dist.Session.spec
      (** general (possibly heavy-tailed) session-length distributions;
          an all-exponential spec is equivalent to
          {!Exponential_sessions} with the same parameters *)

type t = {
  name : string;
  num_peers : int;
  keys : int;               (** unique keys in the workload *)
  f_qry : float;            (** per-peer query rate, 1/s (busy-period
                                rate when [rate] is [Diurnal]) *)
  rate : rate_plan;
  distribution : query_distribution;
  shift : shift_plan;
  churn : churn_plan;
  update_mean_lifetime : float option;  (** None = no updates *)
  duration : float;         (** simulated seconds *)
  seed : int;
}

val news_default : t
(** A tractable instance of the paper's news scenario (scaled down from
    20,000 peers so single-run simulation stays interactive; the scale
    knobs are explicit fields). *)

val with_scale : t -> peers:int -> keys:int -> t
(** Rescale population and key space, keeping rates. *)

val distribution : t -> Pdht_dist.Discrete.t
(** Materialise the rank distribution over [keys]. *)

val popularity_shift : t -> Pdht_dist.Popularity_shift.t
(** Materialise the rank-to-key mapping over time. *)

val rate_profile : t -> Rate_profile.t
(** Materialise the per-peer rate over time. *)

val total_query_rate : t -> float
(** [num_peers * f_qry]. *)

val expected_queries : t -> float
(** Over the whole [duration]. *)

val validate : t -> (t, string) result
val pp : Format.formatter -> t -> unit

val presets : (string * string * t) list
(** Named ready-to-run scenarios [(name, description, scenario)]:
    the scaled news system, a flash crowd (popularity flip), a churn
    storm, a busy/calm day, and a uniform-workload stress case. *)

val preset : string -> t option
(** Look a preset up by name. *)
