(** Article-replacement (update) stream.

    "Each article is replaced every 24 hours on average" (paper Section
    4): a Poisson process of rate [articles / mean_lifetime] whose
    events replace a uniformly random article. *)

type update = { time : float; article_id : int }

type t

val create :
  Pdht_util.Rng.t -> articles:int -> mean_lifetime:float -> t
(** [mean_lifetime] in seconds (86400 in the paper).  Requires both
    positive. *)

val next : t -> after:float -> update
val stream : t -> from:float -> until:float -> update Seq.t

val attach :
  t ->
  Pdht_sim.Engine.t ->
  until:float ->
  handler:(Pdht_sim.Engine.t -> article_id:int -> unit) ->
  unit
(** Schedule the whole stream; each replacement fires [handler] at its
    time ([Engine.now] inside the handler).  Streamed through a single
    re-scheduled closure — O(1) memory in event count. *)

val per_key_update_frequency : t -> keys_per_article:int -> float
(** The model's [fUpd]: replacing an article rewrites each of its keys
    once, so per-key frequency equals [1 / mean_lifetime]. *)
