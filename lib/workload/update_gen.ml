type update = { time : float; article_id : int }

type t = {
  rng : Pdht_util.Rng.t;
  articles : int;
  mean_lifetime : float;
  (* streaming state, as in {!Query_gen}: one pending event held flat *)
  pending_time : float array;
  mutable pending_article : int;
}

let create rng ~articles ~mean_lifetime =
  if articles < 1 then invalid_arg "Update_gen.create: need >= 1 article";
  if not (mean_lifetime > 0.) then invalid_arg "Update_gen.create: lifetime must be positive";
  { rng; articles; mean_lifetime; pending_time = Array.make 1 0.; pending_article = 0 }

let total_rate t = float_of_int t.articles /. t.mean_lifetime

let draw_pending t ~after =
  let gap = Pdht_util.Rng.exponential t.rng ~rate:(total_rate t) in
  t.pending_time.(0) <- after +. gap;
  t.pending_article <- Pdht_util.Rng.int t.rng t.articles

let next t ~after =
  draw_pending t ~after;
  { time = t.pending_time.(0); article_id = t.pending_article }

let stream t ~from ~until =
  let rec continue after () =
    let u = next t ~after in
    if u.time > until then Seq.Nil else Seq.Cons (u, continue u.time)
  in
  continue from

(* One re-scheduled closure; see {!Query_gen.attach}. *)
let attach t engine ~until ~handler =
  let rec fire eng =
    let time = t.pending_time.(0) in
    handler eng ~article_id:t.pending_article;
    advance time
  and advance after =
    draw_pending t ~after;
    if t.pending_time.(0) <= until then
      Pdht_sim.Engine.schedule_at engine ~time:t.pending_time.(0) fire
  in
  advance (Pdht_sim.Engine.now engine)

let per_key_update_frequency t ~keys_per_article =
  if keys_per_article < 1 then invalid_arg "Update_gen.per_key_update_frequency";
  1. /. t.mean_lifetime
