(** Pluggable index-selection policies.

    The paper's Section 5 answers "what should the partial index hold?"
    with one mechanism: a global key TTL, reset on every query, so keys
    queried less often than once per keyTtl fall out.  That heuristic
    is a single point in a larger design space — Sarshar &
    Roychowdhury's size-budgeted optimum cache (arXiv cs/0210010) and
    the Distributed Learned Hash Table (arXiv 2508.14239) both pick
    the indexed set from observed demand.  This module makes the
    decision a first-class interface so the strategies can be raced on
    identical workloads.

    A selector sees the query stream ({!SELECTOR.observe}), gates index
    insertions ({!SELECTOR.admit}), sets per-key expirations
    ({!SELECTOR.ttl_for}), and periodically refits itself
    ({!SELECTOR.retune}).  All implementations are deterministic: they
    draw no randomness, so simulation reports remain pure functions of
    (scenario, strategy, options).

    Four policies implement the interface:
    - {!Ttl_selector} — the paper's behaviour (model-derived, fixed, or
      adaptive TTL; the adaptive variant delegates to the existing
      controller through a [ttl_now] thunk): admit everything, one
      global TTL.
    - {!Cost_optimal} — re-solves the Eq. 1-2 fixed point online from
      the estimated live fQry and admits exactly the keys whose
      estimated query rate clears the resulting fMin threshold.
    - {!Learned} — demand-coverage placement à la DLHT: at each refit,
      index the smallest popularity prefix covering a fixed fraction of
      the observed query mass.
    - {!Cache_budget} — a size-budgeted optimum cache per cs/0210010:
      index the top-[budget] keys by estimated rate. *)

(** The paper's TTL axis, kept as one arm of the new policy space. *)
type ttl_mode =
  | Model_derived  (** keyTtl = 1/fMin from the analytical model *)
  | Fixed of float (** explicit keyTtl in seconds *)
  | Adaptive       (** the self-tuning Section 5.1.1 controller *)

(** What drives index selection for a run. *)
type spec =
  | Ttl of ttl_mode
  | Cost_optimal
  | Learned
  | Cache_budget of int  (** maximum number of distinct indexed keys *)

val default : spec
(** [Ttl Model_derived] — the paper's behaviour. *)

val equal : spec -> spec -> bool
val label : spec -> string
(** Short display name: ["ttl"], ["ttl:300"], ["ttl:adaptive"],
    ["cost"], ["learned"], ["cache:500"]. *)

val to_string : spec -> string
(** Round-trips with {!of_string} (same output as {!label}). *)

val of_string : string -> (spec, string) result
(** CLI grammar: [ttl] (model-derived), [ttl:SECS] (fixed, positive),
    [ttl:adaptive], [cost], [learned], [cache:BUDGET] (>= 1). *)

val uses_selector : spec -> bool
(** [true] for the policies that need a live selector instance
    ([Cost_optimal], [Learned], [Cache_budget]).  [Ttl _] runs use the
    original global-TTL code path and need none. *)

val validate : spec -> (spec, string) result
(** Reject non-positive fixed TTLs and non-positive cache budgets. *)

(** What a selector is told about a key. *)
type event =
  | Queried of { hit : bool }  (** a query for the key; [hit] = answered
                                   from the index *)
  | Inserted                   (** an index insertion was admitted *)
  | Rejected                   (** an index insertion was declined *)

(** Reporting snapshot, folded into the run report. *)
type summary = {
  policy : string;         (** {!label} of the spec *)
  retunes : int;           (** completed {!SELECTOR.retune} passes *)
  observed_queries : int;  (** [Queried] events seen *)
  admitted_inserts : int;  (** [Inserted] events seen *)
  rejected_inserts : int;  (** [Rejected] events seen *)
  target_keys : int;       (** current admission-set size; -1 = unbounded *)
  est_f_qry : float;       (** estimated per-peer query rate, 1/s *)
  threshold : float;       (** admission rate threshold, queries/s;
                               0. while warming up or unbounded *)
}

module type SELECTOR = sig
  type t

  val observe : t -> now:float -> key_index:int -> event -> unit
  (** Feed one key event; called on the query hot path. *)

  val admit : t -> now:float -> key_index:int -> bool
  (** Should a freshly resolved key be (re)inserted into the index? *)

  val ttl_for : t -> now:float -> key_index:int -> float
  (** Expiration lease for an insertion or query-hit refresh of the
      key, in seconds (always positive). *)

  val retune : t -> now:float -> unit
  (** Periodic refit from the observation window. *)

  val summary : t -> summary
end

module Ttl_selector : sig
  include SELECTOR
  val create : label:string -> ttl_now:(unit -> float) -> t
end

module Cost_optimal : sig
  include SELECTOR
  val create :
    params:Pdht_model.Params.t -> base_ttl:float -> retune_every:float -> t
  val threshold : t -> float
  (** Current fMin estimate (0. until the first productive retune). *)
end

module Learned : sig
  include SELECTOR
  val create :
    ?coverage:float ->
    params:Pdht_model.Params.t -> base_ttl:float -> retune_every:float -> unit -> t
  (** [coverage] (default 0.9, in (0, 1]) is the fraction of observed
      query mass the learned placement must cover. *)
end

module Cache_budget : sig
  include SELECTOR
  val create :
    budget:int ->
    params:Pdht_model.Params.t -> base_ttl:float -> retune_every:float -> t
  (** @raise Invalid_argument on [budget < 1]. *)
end

(** A selector instance with its implementation packed away. *)
type packed = Packed : (module SELECTOR with type t = 'a) * 'a -> packed

val instantiate :
  ?ttl_now:(unit -> float) ->
  spec ->
  params:Pdht_model.Params.t ->
  base_ttl:float ->
  retune_every:float ->
  packed
(** Build the selector for [spec].  [params] is the analytical-model
    view of the scenario (for the online Eq. 1-2 re-solve), [base_ttl]
    the TTL the run starts with (used until the first retune), and
    [retune_every] the refit period the caller will drive retunes at.
    [ttl_now] (default: constantly [base_ttl]) is only read by
    [Ttl _] specs — it lets the adaptive controller keep ownership of
    the global TTL.  @raise Invalid_argument on non-positive
    [base_ttl]/[retune_every] or an invalid spec. *)

val observe : packed -> now:float -> key_index:int -> event -> unit
val admit : packed -> now:float -> key_index:int -> bool
val ttl_for : packed -> now:float -> key_index:int -> float
val retune : packed -> now:float -> unit
val summary : packed -> summary
(** Convenience forwarders through the packed existential. *)
