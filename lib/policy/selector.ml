module Params = Pdht_model.Params
module Index_policy = Pdht_model.Index_policy

type ttl_mode = Model_derived | Fixed of float | Adaptive
type spec = Ttl of ttl_mode | Cost_optimal | Learned | Cache_budget of int

let default = Ttl Model_derived
let equal (a : spec) (b : spec) = a = b

let label = function
  | Ttl Model_derived -> "ttl"
  | Ttl (Fixed s) -> Printf.sprintf "ttl:%g" s
  | Ttl Adaptive -> "ttl:adaptive"
  | Cost_optimal -> "cost"
  | Learned -> "learned"
  | Cache_budget b -> Printf.sprintf "cache:%d" b

let to_string = label

let validate = function
  | Ttl (Fixed s) when not (Float.is_finite s && s > 0.) ->
      Error (Printf.sprintf "fixed ttl %g must be finite and positive" s)
  | Cache_budget b when b < 1 ->
      Error (Printf.sprintf "cache budget %d must be >= 1" b)
  | s -> Ok s

let of_string s =
  let s = String.trim s in
  let parsed =
    match String.index_opt s ':' with
    | None -> (
        match String.lowercase_ascii s with
        | "ttl" -> Ok (Ttl Model_derived)
        | "cost" -> Ok Cost_optimal
        | "learned" -> Ok Learned
        | "cache" -> Error "cache needs a budget: cache:BUDGET"
        | _ -> Error (Printf.sprintf "unknown policy %S (ttl / cost / learned / cache)" s)
    )
    | Some i -> (
        let head = String.lowercase_ascii (String.sub s 0 i) in
        let arg = String.sub s (i + 1) (String.length s - i - 1) in
        match head with
        | "ttl" -> (
            match String.lowercase_ascii arg with
            | "adaptive" -> Ok (Ttl Adaptive)
            | _ -> (
                match float_of_string_opt arg with
                | Some secs -> Ok (Ttl (Fixed secs))
                | None ->
                    Error
                      (Printf.sprintf "ttl argument %S: expected SECS or 'adaptive'" arg)))
        | "cache" -> (
            match int_of_string_opt arg with
            | Some b -> Ok (Cache_budget b)
            | None -> Error (Printf.sprintf "cache budget %S: expected an integer" arg))
        | _ -> Error (Printf.sprintf "unknown policy %S (ttl / cost / learned / cache)" s))
  in
  match parsed with Ok spec -> validate spec | Error _ as e -> e

let uses_selector = function
  | Ttl _ -> false
  | Cost_optimal | Learned | Cache_budget _ -> true

type event = Queried of { hit : bool } | Inserted | Rejected

type summary = {
  policy : string;
  retunes : int;
  observed_queries : int;
  admitted_inserts : int;
  rejected_inserts : int;
  target_keys : int;
  est_f_qry : float;
  threshold : float;
}

module type SELECTOR = sig
  type t

  val observe : t -> now:float -> key_index:int -> event -> unit
  val admit : t -> now:float -> key_index:int -> bool
  val ttl_for : t -> now:float -> key_index:int -> float
  val retune : t -> now:float -> unit
  val summary : t -> summary
end

(* Event bookkeeping shared by every implementation. *)
module Counters = struct
  type t = {
    mutable observed : int;
    mutable admitted : int;
    mutable rejected : int;
    mutable retunes : int;
  }

  let create () = { observed = 0; admitted = 0; rejected = 0; retunes = 0 }

  let note t = function
    | Queried _ -> t.observed <- t.observed + 1
    | Inserted -> t.admitted <- t.admitted + 1
    | Rejected -> t.rejected <- t.rejected + 1
end

(* Lease clamp shared by the adaptive policies: never shorter than a
   second, never the effectively-infinite baseline. *)
let clamp_ttl x = Float.max 1. (Float.min 1e7 x)

(* TTL handed to keys outside the admission set (reachable only for
   entries admitted before the first retune): short enough to decay
   within a refit period, but never below a second. *)
let outside_ttl ~base_ttl ~retune_every =
  Float.max 1. (Float.min base_ttl (0.5 *. retune_every))

module Ttl_selector = struct
  type t = { lbl : string; ttl_now : unit -> float; c : Counters.t }

  let create ~label:lbl ~ttl_now = { lbl; ttl_now; c = Counters.create () }
  let observe t ~now:_ ~key_index:_ event = Counters.note t.c event
  let admit _ ~now:_ ~key_index:_ = true
  let ttl_for t ~now:_ ~key_index:_ = t.ttl_now ()
  let retune t ~now:_ = t.c.Counters.retunes <- t.c.Counters.retunes + 1

  let summary t =
    {
      policy = t.lbl;
      retunes = t.c.Counters.retunes;
      observed_queries = t.c.Counters.observed;
      admitted_inserts = t.c.Counters.admitted;
      rejected_inserts = t.c.Counters.rejected;
      target_keys = -1;
      est_f_qry = 0.;
      threshold = 0.;
    }
end

module Cost_optimal = struct
  type t = {
    params : Params.t;
    base_ttl : float;
    retune_every : float;
    freq : Freq.t;
    c : Counters.t;
    mutable thr : float;       (* admission threshold: current fMin estimate *)
    mutable ttl_in : float;    (* lease for admitted keys *)
    mutable target : int;
    mutable have_fit : bool;
  }

  let create ~params ~base_ttl ~retune_every =
    {
      params;
      base_ttl;
      retune_every;
      freq = Freq.create ~keys:params.Params.keys ();
      c = Counters.create ();
      thr = 0.;
      ttl_in = base_ttl;
      target = -1;
      have_fit = false;
    }

  let threshold t = t.thr

  let observe t ~now:_ ~key_index event =
    Counters.note t.c event;
    match event with Queried _ -> Freq.note t.freq ~key_index | Inserted | Rejected -> ()

  let admit t ~now ~key_index =
    (* Warm up permissively: until the first fit there is no estimate
       to gate on, which reproduces the plain TTL behaviour.  The live
       window lets a key that turns hot mid-window back in without
       waiting for the next retune. *)
    (not t.have_fit) || Freq.live_rate t.freq ~now ~key_index >= t.thr

  let ttl_for t ~now ~key_index =
    if not t.have_fit then t.base_ttl
    else if Freq.live_rate t.freq ~now ~key_index >= t.thr then t.ttl_in
    else outside_ttl ~base_ttl:t.base_ttl ~retune_every:t.retune_every

  let retune t ~now =
    Freq.fold t.freq ~now;
    t.c.Counters.retunes <- t.c.Counters.retunes + 1;
    let per_peer = Freq.total_rate t.freq /. float_of_int t.params.Params.num_peers in
    if per_peer > 0. then begin
      (* Re-solve the Eq. 1-2 fixed point against the *measured* query
         rate: the resulting fMin is the indexing-worthiness threshold
         keys must clear (Eq. 2). *)
      let solution = Index_policy.solve { t.params with Params.f_qry = per_peer } in
      let f_min = solution.Index_policy.f_min in
      if Float.is_finite f_min && f_min > 0. then begin
        t.thr <- f_min;
        (* Admitted keys get a lease a few expected inter-query gaps
           long: the paper's 1/fMin is the *marginal* key's gap, so a
           multiple keeps clearly-worthwhile keys from oscillating out
           on Poisson gaps. *)
        t.ttl_in <- clamp_ttl (4. /. f_min);
        t.have_fit <- true
      end;
      let count = ref 0 in
      for k = 0 to t.params.Params.keys - 1 do
        if Freq.rate t.freq ~key_index:k >= t.thr && Freq.rate t.freq ~key_index:k > 0.
        then incr count
      done;
      t.target <- !count
    end

  let summary t =
    {
      policy = "cost";
      retunes = t.c.Counters.retunes;
      observed_queries = t.c.Counters.observed;
      admitted_inserts = t.c.Counters.admitted;
      rejected_inserts = t.c.Counters.rejected;
      target_keys = t.target;
      est_f_qry = Freq.total_rate t.freq /. float_of_int t.params.Params.num_peers;
      threshold = t.thr;
    }
end

(* Set-based placements (Learned, Cache_budget) share the admission
   machinery: a byte per key, rebuilt at each refit. *)
module Placement = struct
  type t = {
    params : Params.t;
    base_ttl : float;
    retune_every : float;
    freq : Freq.t;
    c : Counters.t;
    admitted : Bytes.t;
    mutable thr : float;
    mutable target : int;
    mutable have_fit : bool;
  }

  let create ~params ~base_ttl ~retune_every =
    {
      params;
      base_ttl;
      retune_every;
      freq = Freq.create ~keys:params.Params.keys ();
      c = Counters.create ();
      admitted = Bytes.make params.Params.keys '\000';
      thr = 0.;
      target = -1;
      have_fit = false;
    }

  let in_set t key_index = Bytes.get t.admitted key_index <> '\000'

  let observe t ~now:_ ~key_index event =
    Counters.note t.c event;
    match event with Queried _ -> Freq.note t.freq ~key_index | Inserted | Rejected -> ()

  let ttl_for t ~now:_ ~key_index =
    if not t.have_fit then t.base_ttl
    else if in_set t key_index then clamp_ttl (2. *. t.retune_every)
    else outside_ttl ~base_ttl:t.base_ttl ~retune_every:t.retune_every

  (* Rebuild the admission set as the longest popularity prefix [keep]
     accepts; returns the number of keys placed. *)
  let refit t ~now ~keep =
    Freq.fold t.freq ~now;
    t.c.Counters.retunes <- t.c.Counters.retunes + 1;
    if Freq.total_rate t.freq > 0. then begin
      Bytes.fill t.admitted 0 (Bytes.length t.admitted) '\000';
      let ranked = Freq.ranked t.freq in
      let placed = ref 0 in
      let cum = ref 0. in
      let continue = ref true in
      let i = ref 0 in
      let n = Array.length ranked in
      while !continue && !i < n do
        let k = ranked.(!i) in
        let r = Freq.rate t.freq ~key_index:k in
        if r > 0. && keep ~placed:!placed ~cum:!cum ~rate:r then begin
          Bytes.set t.admitted k '\001';
          cum := !cum +. r;
          incr placed;
          t.thr <- r;
          incr i
        end
        else continue := false
      done;
      t.target <- !placed;
      t.have_fit <- true
    end

  let summary t ~policy =
    {
      policy;
      retunes = t.c.Counters.retunes;
      observed_queries = t.c.Counters.observed;
      admitted_inserts = t.c.Counters.admitted;
      rejected_inserts = t.c.Counters.rejected;
      target_keys = t.target;
      est_f_qry = Freq.total_rate t.freq /. float_of_int t.params.Params.num_peers;
      threshold = t.thr;
    }
end

module Learned = struct
  type t = { p : Placement.t; coverage : float }

  let create ?(coverage = 0.9) ~params ~base_ttl ~retune_every () =
    if not (coverage > 0. && coverage <= 1.) then
      invalid_arg "Learned.create: coverage must be in (0, 1]";
    { p = Placement.create ~params ~base_ttl ~retune_every; coverage }

  let observe t ~now ~key_index event = Placement.observe t.p ~now ~key_index event

  let admit t ~now:_ ~key_index =
    (not t.p.Placement.have_fit) || Placement.in_set t.p key_index

  let ttl_for t ~now ~key_index = Placement.ttl_for t.p ~now ~key_index

  let retune t ~now =
    (* DLHT-style refit: learn the smallest popularity prefix covering
       [coverage] of the observed query mass. *)
    Placement.refit t.p ~now ~keep:(fun ~placed:_ ~cum ~rate:_ ->
        cum < t.coverage *. Freq.total_rate t.p.Placement.freq)

  let summary t = Placement.summary t.p ~policy:"learned"
end

module Cache_budget = struct
  type t = { p : Placement.t; budget : int }

  let create ~budget ~params ~base_ttl ~retune_every =
    if budget < 1 then invalid_arg "Cache_budget.create: budget must be >= 1";
    { p = Placement.create ~params ~base_ttl ~retune_every; budget }

  let observe t ~now ~key_index event = Placement.observe t.p ~now ~key_index event

  let admit t ~now:_ ~key_index =
    (not t.p.Placement.have_fit)
    || Placement.in_set t.p key_index
    (* Under-budget caches have room: keep admitting until the next
       refit ranks the newcomers properly. *)
    || t.p.Placement.target < t.budget

  let ttl_for t ~now ~key_index = Placement.ttl_for t.p ~now ~key_index

  let retune t ~now =
    (* cs/0210010's optimum cache under a size constraint: the most
       popular [budget] keys by estimated rate. *)
    Placement.refit t.p ~now ~keep:(fun ~placed ~cum:_ ~rate:_ -> placed < t.budget)

  let summary t = Placement.summary t.p ~policy:(Printf.sprintf "cache:%d" t.budget)
end

type packed = Packed : (module SELECTOR with type t = 'a) * 'a -> packed

let instantiate ?ttl_now spec ~params ~base_ttl ~retune_every =
  if not (Float.is_finite base_ttl && base_ttl > 0.) then
    invalid_arg "Selector.instantiate: base_ttl must be finite and positive";
  if not (retune_every > 0.) then
    invalid_arg "Selector.instantiate: retune_every must be positive";
  (match validate spec with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Selector.instantiate: " ^ msg));
  match spec with
  | Ttl _ ->
      let ttl_now = match ttl_now with Some f -> f | None -> fun () -> base_ttl in
      Packed
        ( (module Ttl_selector : SELECTOR with type t = Ttl_selector.t),
          Ttl_selector.create ~label:(label spec) ~ttl_now )
  | Cost_optimal ->
      Packed
        ( (module Cost_optimal : SELECTOR with type t = Cost_optimal.t),
          Cost_optimal.create ~params ~base_ttl ~retune_every )
  | Learned ->
      Packed
        ( (module Learned : SELECTOR with type t = Learned.t),
          Learned.create ~params ~base_ttl ~retune_every () )
  | Cache_budget budget ->
      Packed
        ( (module Cache_budget : SELECTOR with type t = Cache_budget.t),
          Cache_budget.create ~budget ~params ~base_ttl ~retune_every )

let observe (Packed ((module S), t)) ~now ~key_index event =
  S.observe t ~now ~key_index event

let admit (Packed ((module S), t)) ~now ~key_index = S.admit t ~now ~key_index
let ttl_for (Packed ((module S), t)) ~now ~key_index = S.ttl_for t ~now ~key_index
let retune (Packed ((module S), t)) ~now = S.retune t ~now
let summary (Packed ((module S), t)) = S.summary t
