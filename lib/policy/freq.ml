type t = {
  smoothing : float;
  keys : int;
  counts : int array;
  rates : float array;
  mutable window_start : float;
  mutable window_total : int;
  mutable folds : int;
  mutable est_total : float;
}

let create ?(smoothing = 0.5) ~keys () =
  if keys < 1 then invalid_arg "Freq.create: keys must be >= 1";
  if smoothing <= 0. || smoothing > 1. then
    invalid_arg "Freq.create: smoothing must be in (0, 1]";
  {
    smoothing;
    keys;
    counts = Array.make keys 0;
    rates = Array.make keys 0.;
    window_start = 0.;
    window_total = 0;
    folds = 0;
    est_total = 0.;
  }

let check_key t key_index =
  if key_index < 0 || key_index >= t.keys then invalid_arg "Freq: key_index out of range"

let note t ~key_index =
  check_key t key_index;
  t.counts.(key_index) <- t.counts.(key_index) + 1;
  t.window_total <- t.window_total + 1

let fold t ~now =
  let elapsed = now -. t.window_start in
  if elapsed > 0. then begin
    let beta = t.smoothing in
    let first = t.folds = 0 in
    for k = 0 to t.keys - 1 do
      let w = float_of_int t.counts.(k) /. elapsed in
      t.rates.(k) <- (if first then w else ((1. -. beta) *. t.rates.(k)) +. (beta *. w));
      t.counts.(k) <- 0
    done;
    let w_total = float_of_int t.window_total /. elapsed in
    t.est_total <-
      (if first then w_total else ((1. -. beta) *. t.est_total) +. (beta *. w_total));
    t.window_total <- 0;
    t.folds <- t.folds + 1;
    t.window_start <- now
  end

let rate t ~key_index =
  check_key t key_index;
  t.rates.(key_index)

let live_rate t ~now ~key_index =
  check_key t key_index;
  let elapsed = now -. t.window_start in
  let window =
    if elapsed > 0. then float_of_int t.counts.(key_index) /. elapsed else 0.
  in
  Float.max t.rates.(key_index) window

let total_rate t = t.est_total
let folds t = t.folds
let window_queries t = t.window_total

let ranked t =
  let ids = Array.init t.keys (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare t.rates.(b) t.rates.(a) in
      if c <> 0 then c else compare a b)
    ids;
  ids
