(** Online per-key query-frequency estimator.

    The paper's Eq. 2 needs the per-key query frequency fQry(k); the
    analytical model reads it off the assumed Zipf curve, while the
    selection policies in this library estimate it from the live query
    stream.  The estimator counts queries per key between {!fold}
    calls and maintains an exponential moving average of the per-key
    global query rate (queries per second, summed over all peers):
    at each fold, [rate(k) <- (1 - smoothing) * rate(k)
    + smoothing * count(k) / elapsed].  The first fold seeds the EMA
    directly so early estimates are not dragged toward zero.

    Everything is deterministic: no randomness, no wall clock — time
    comes from the caller (the simulation engine). *)

type t

val create : ?smoothing:float -> keys:int -> unit -> t
(** [smoothing] is the EMA weight of each new window (default 0.5, in
    (0, 1]).  @raise Invalid_argument on [keys < 1] or a smoothing
    outside (0, 1]. *)

val note : t -> key_index:int -> unit
(** Count one query for [key_index] in the current window.  Out-of-range
    indices raise [Invalid_argument]. *)

val fold : t -> now:float -> unit
(** Blend the current window into the per-key EMAs and start a new
    window at [now].  A window with non-positive elapsed time is
    discarded (counts are kept for the next fold). *)

val rate : t -> key_index:int -> float
(** EMA'd global query rate of a key, in queries per second (0. before
    the first fold). *)

val live_rate : t -> now:float -> key_index:int -> float
(** [max (rate k) (window count / elapsed)] — the EMA floor-lifted by
    the still-open window, so a key that turns hot mid-window is seen
    before the next {!fold}. *)

val total_rate : t -> float
(** EMA'd total query rate over all keys, queries per second. *)

val folds : t -> int
(** Number of completed folds (0 = still warming up). *)

val window_queries : t -> int
(** Queries observed in the current (unfolded) window. *)

val ranked : t -> int array
(** Key indices sorted by decreasing EMA rate, ties broken by
    increasing index — a deterministic popularity ranking. *)
