(** Deterministic pseudo-random number generation.

    All randomness in the PDHT code base flows through this module so
    that every experiment is exactly reproducible from a single integer
    seed.  The generator is xoshiro256** seeded through splitmix64, a
    combination with good statistical quality and cheap state copying.

    States are explicit and mutable; use {!split} to derive independent
    streams for sub-components (e.g. one stream per simulated peer). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed].
    Two generators created with the same seed produce the same
    sequence. *)

val copy : t -> t
(** [copy t] is an independent snapshot of [t]'s current state. *)

val split : t -> t
(** [split t] draws from [t] to create a statistically independent
    generator.  Advances [t]. *)

val derive_seed : seed:int -> stream:int -> int
(** [derive_seed ~seed ~stream] is a non-negative seed derived from the
    pair by splitmix64 mixing.  Stateless and deterministic: parallel
    task [stream] of a batch rooted at [seed] gets the same seed no
    matter which domain runs it or in what order — the basis of the
    runner's parallel/sequential parity guarantee.  Distinct streams of
    the same root seed give statistically independent generators. *)

val of_stream : seed:int -> stream:int -> t
(** [of_stream ~seed ~stream] is [create ~seed:(derive_seed ~seed ~stream)]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to
    [\[0,1\]]). *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] samples an exponential waiting time with the
    given rate (mean [1. /. rate]).  Requires [rate > 0.]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of Bernoulli([p]) failures before the
    first success (support {m 0, 1, 2, ...}).  Requires [0 < p <= 1]. *)
