let conflicts ~dominant ~subsumed =
  match List.filter_map (fun (flag, present) -> if present then Some flag else None) subsumed with
  | [] -> None
  | present ->
      let listed =
        match List.rev present with
        | [] -> assert false
        | [ only ] -> only
        | last :: front -> String.concat ", " (List.rev front) ^ " and " ^ last
      in
      Some (Printf.sprintf "%s subsumes %s" dominant listed)
