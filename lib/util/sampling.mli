(** Sampling utilities over explicit {!Rng.t} streams. *)

val shuffle : Rng.t -> 'a array -> unit
(** Fisher-Yates in-place shuffle. *)

val shuffle_prefix : Rng.t -> 'a array -> len:int -> unit
(** Fisher-Yates over [arr.(0 .. len-1)] only, leaving the rest
    untouched.  Draws exactly the same RNG sequence as {!shuffle} on a
    [len]-element array, so copying candidates into a reusable oversized
    buffer and shuffling the prefix is observably identical to shuffling
    a fresh exact-size copy.
    @raise Invalid_argument when [len] is outside [0, length arr]. *)

val choose : Rng.t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on an
    empty array. *)

val sample_without_replacement : Rng.t -> k:int -> n:int -> int array
(** [sample_without_replacement rng ~k ~n] draws [k] distinct indices
    from [\[0, n)], in random order.  Requires [0 <= k <= n].  Uses a
    sparse partial Fisher-Yates pass, O(k) time and space — draws and
    output are identical to shuffling a materialised pool, so callers'
    streams are unchanged while [n] can be millions. *)

val reservoir : Rng.t -> k:int -> 'a Seq.t -> 'a array
(** Reservoir sampling: [k] uniform elements of a sequence of unknown
    length (fewer if the sequence is shorter). *)

val weighted_index : Rng.t -> float array -> int
(** [weighted_index rng weights] draws index [i] with probability
    proportional to [weights.(i)].  Linear scan; for repeated draws use
    {!Alias}.  Requires at least one strictly positive weight. *)

(** Walker's alias method: O(n) preprocessing, O(1) per draw. *)
module Alias : sig
  type t

  val create : float array -> t
  (** Build a sampler for the given unnormalised weights.  Requires a
      non-empty array of non-negative weights with positive sum. *)

  val size : t -> int
  val draw : t -> Rng.t -> int
end
