(* xoshiro256** with each 64-bit state word held as two immediate 32-bit
   halves in native ints.  A boxed [mutable int64] state costs ~26 minor
   words per draw (every field store and intermediate re-boxes), and the
   draw rate is high enough that RNG boxing dominated the allocation
   profile of every randomised hot path.  With int halves a draw
   allocates nothing; the emitted stream is bit-for-bit identical to the
   boxed implementation.  [resh]/[resl] are scratch output slots so
   [step] can hand both halves back without allocating a tuple. *)
type t = {
  mutable s0h : int; mutable s0l : int;
  mutable s1h : int; mutable s1l : int;
  mutable s2h : int; mutable s2l : int;
  mutable s3h : int; mutable s3l : int;
  mutable resh : int; mutable resl : int;
}

let mask32 = 0xFFFFFFFF

(* One xoshiro256** step: scrambler output [rotl (s1 * 5) 7 * 9] into
   [resh]/[resl], then the linear state transition.  All arithmetic
   stays below 2^40, far inside the 63-bit native int. *)
let step t =
  let m5l0 = t.s1l * 5 in
  let m5l = m5l0 land mask32 in
  let m5h = ((t.s1h * 5) + (m5l0 lsr 32)) land mask32 in
  let r7h = ((m5h lsl 7) lor (m5l lsr 25)) land mask32 in
  let r7l = ((m5l lsl 7) lor (m5h lsr 25)) land mask32 in
  let m9l0 = r7l * 9 in
  t.resl <- m9l0 land mask32;
  t.resh <- ((r7h * 9) + (m9l0 lsr 32)) land mask32;
  let tmph = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land mask32 in
  let tmpl = (t.s1l lsl 17) land mask32 in
  t.s2h <- t.s2h lxor t.s0h;
  t.s2l <- t.s2l lxor t.s0l;
  t.s3h <- t.s3h lxor t.s1h;
  t.s3l <- t.s3l lxor t.s1l;
  t.s1h <- t.s1h lxor t.s2h;
  t.s1l <- t.s1l lxor t.s2l;
  t.s0h <- t.s0h lxor t.s3h;
  t.s0l <- t.s0l lxor t.s3l;
  t.s2h <- t.s2h lxor tmph;
  t.s2l <- t.s2l lxor tmpl;
  (* s3 <- rotl s3 45, i.e. swap halves then rotate by 13. *)
  let h = t.s3h and l = t.s3l in
  t.s3h <- ((l lsl 13) lor (h lsr 19)) land mask32;
  t.s3l <- ((h lsl 13) lor (l lsr 19)) land mask32

(* splitmix64: used only to expand the seed into the four xoshiro words,
   as recommended by Blackman & Vigna.  Setup-time only, so the boxed
   Int64 arithmetic is fine here. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hi64 v = Int64.to_int (Int64.shift_right_logical v 32)
let lo64 v = Int64.to_int (Int64.logand v 0xFFFFFFFFL)

let of_words s0 s1 s2 s3 =
  {
    s0h = hi64 s0; s0l = lo64 s0;
    s1h = hi64 s1; s1l = lo64 s1;
    s2h = hi64 s2; s2l = lo64 s2;
    s3h = hi64 s3; s3l = lo64 s3;
    resh = 0; resl = 0;
  }

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  of_words s0 s1 s2 s3

let copy t =
  {
    s0h = t.s0h; s0l = t.s0l;
    s1h = t.s1h; s1l = t.s1l;
    s2h = t.s2h; s2l = t.s2l;
    s3h = t.s3h; s3l = t.s3l;
    resh = 0; resl = 0;
  }

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.resh) 32) (Int64.of_int t.resl)

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  of_words s0 s1 s2 s3

(* Derivation is stateless: two splitmix64 rounds mix [seed] and
   [stream] so that nearby (seed, stream) pairs land far apart, and the
   result does not depend on any generator having been advanced.  The
   +1 keeps stream 0 from collapsing to a plain splitmix of the seed. *)
let derive_seed ~seed ~stream =
  let state = ref (Int64.of_int seed) in
  let mixed_seed = splitmix64_next state in
  let state =
    ref
      (Int64.logxor mixed_seed
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (stream + 1))))
  in
  (* Keep 62 bits: a 63-bit value can still wrap negative through
     Int64.to_int on 64-bit OCaml ints. *)
  Int64.to_int (Int64.shift_right_logical (splitmix64_next state) 2)

let of_stream ~seed ~stream = create ~seed:(derive_seed ~seed ~stream)

(* Exactly uniform bounded draws.  Two strategies, both rejection
   sampled so every bound is exactly uniform:

   - bound < 2^30: Lemire's multiply-shift.  [r30 * bound] fits a
     native int, the candidate is its high 30 bits, and the biased low
     slots are rejected.  The common case costs one multiply and one
     shift — no hardware division, which at the simulator's draw volume
     (maintenance probes, walk steps, routing) is the dominant cost of
     a draw.  The division computing the exact rejection threshold only
     runs when the cheap [low < bound] pre-test fires (probability
     [bound / 2^30]).
   - larger bounds: the classic 62-bit modulo rejection.

   Top-level [let rec] so the retry paths need no per-call closure. *)
let rec lemire_draw t bound =
  step t;
  let r30 = t.resh lsr 2 in
  let m = r30 * bound in
  let low = m land 0x3FFFFFFF in
  if low < bound && low < (0x40000000 - bound) mod bound then lemire_draw t bound
  else m lsr 30

let rec int_draw t bound =
  step t;
  (* The 62 high bits of the output word, as in [bits64 >>> 2]. *)
  let r = (t.resh lsl 30) lor (t.resl lsr 2) in
  let v = r mod bound in
  if r - v > max_int - bound + 1 then int_draw t bound else v

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound < 0x40000000 then lemire_draw t bound else int_draw t bound

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 high bits give a uniform double in [0,1). *)
  step t;
  float_of_int ((t.resh lsl 21) lor (t.resl lsr 11)) *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t =
  step t;
  t.resl land 1 = 1

let bernoulli t ~p =
  if p <= 0. then false else if p >= 1. then true else unit_float t < p

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. unit_float t in
  -.log u /. rate

let geometric t ~p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. unit_float t in
    int_of_float (Float.floor (log u /. log (1. -. p)))
