type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the four xoshiro words,
   as recommended by Blackman & Vigna. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

(* Derivation is stateless: two splitmix64 rounds mix [seed] and
   [stream] so that nearby (seed, stream) pairs land far apart, and the
   result does not depend on any generator having been advanced.  The
   +1 keeps stream 0 from collapsing to a plain splitmix of the seed. *)
let derive_seed ~seed ~stream =
  let state = ref (Int64.of_int seed) in
  let mixed_seed = splitmix64_next state in
  let state =
    ref
      (Int64.logxor mixed_seed
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (stream + 1))))
  in
  (* Keep 62 bits: a 63-bit value can still wrap negative through
     Int64.to_int on 64-bit OCaml ints. *)
  Int64.to_int (Int64.shift_right_logical (splitmix64_next state) 2)

let of_stream ~seed ~stream = create ~seed:(derive_seed ~seed ~stream)

(* Rejection sampling over the non-negative 62-bit range (so the draw
   always fits OCaml's 63-bit int) keeps the distribution exactly
   uniform for any bound. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 high bits give a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p =
  if p <= 0. then false else if p >= 1. then true else unit_float t < p

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. unit_float t in
  -.log u /. rate

let geometric t ~p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. unit_float t in
    int_of_float (Float.floor (log u /. log (1. -. p)))
