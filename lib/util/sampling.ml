let shuffle_prefix rng arr ~len =
  if len < 0 || len > Array.length arr then invalid_arg "Sampling.shuffle_prefix";
  for i = len - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle rng arr = shuffle_prefix rng arr ~len:(Array.length arr)

let choose rng arr =
  if Array.length arr = 0 then invalid_arg "Sampling.choose: empty array";
  arr.(Rng.int rng (Array.length arr))

let sample_without_replacement rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Sampling.sample_without_replacement";
  (* Sparse partial Fisher-Yates: O(k) time and space instead of
     materialising the whole [0..n-1] pool (which made every caller pay
     O(n) — ruinous when P-Grid construction samples references out of
     half the population per peer).  [displaced] records only the
     positions the virtual pool differs from the identity at; draws and
     output are index-for-index identical to shuffling the real pool. *)
  let displaced = Hashtbl.create (2 * k + 1) in
  let get i = match Hashtbl.find_opt displaced i with Some v -> v | None -> i in
  let out = Array.make (max k 1) 0 in
  for i = 0 to k - 1 do
    let j = Rng.int_in_range rng ~lo:i ~hi:(n - 1) in
    let vi = get i and vj = get j in
    out.(i) <- vj;
    (* Position [i] is never read again (future draws live in
       [i+1, n-1]), so only [j]'s displacement needs recording. *)
    Hashtbl.replace displaced j vi
  done;
  if k = Array.length out then out else Array.sub out 0 k

let reservoir rng ~k seq =
  if k < 0 then invalid_arg "Sampling.reservoir";
  let buf = ref [||] in
  let seen = ref 0 in
  let visit x =
    incr seen;
    let n = !seen in
    if n <= k then buf := Array.append !buf [| x |]
    else
      let j = Rng.int rng n in
      if j < k then !buf.(j) <- x
  in
  Seq.iter visit seq;
  !buf

let weighted_index rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Sampling.weighted_index: weights sum to zero";
  let target = Rng.float rng total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.

module Alias = struct
  type t = { prob : float array; alias : int array }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Alias.create: empty weights";
    let total = Array.fold_left ( +. ) 0. weights in
    if not (total > 0.) then invalid_arg "Alias.create: weights sum to zero";
    Array.iter (fun w -> if w < 0. then invalid_arg "Alias.create: negative weight") weights;
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 1. in
    let alias = Array.init n Fun.id in
    let small = Queue.create () in
    let large = Queue.create () in
    Array.iteri (fun i s -> Queue.add i (if s < 1. then small else large)) scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small in
      let l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      Queue.add l (if scaled.(l) < 1. then small else large)
    done;
    (* Leftovers are 1.0 up to rounding; prob is already 1. *)
    { prob; alias }

  let size t = Array.length t.prob

  let draw t rng =
    let i = Rng.int rng (Array.length t.prob) in
    if Rng.unit_float rng < t.prob.(i) then i else t.alias.(i)
end
