(** Command-line flag conflict reporting.

    When one flag subsumes others, a usage error should name {e every}
    offending flag the user passed, not just the first one noticed —
    otherwise fixing the reported flag surfaces the next as a fresh
    error. *)

val conflicts : dominant:string -> subsumed:(string * bool) list -> string option
(** [conflicts ~dominant ~subsumed] with [subsumed] a list of
    [(flag, present)] pairs returns [None] when no subsumed flag is
    present, otherwise [Some "DOMINANT subsumes F1 and F2"] naming all
    present flags (in list order, joined with "," / "and").  The caller
    appends its remedy hint. *)
