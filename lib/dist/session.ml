module Rng = Pdht_util.Rng

type dist =
  | Exponential
  | Lognormal of { sigma : float }
  | Weibull of { shape : float }
  | Pareto of { shape : float }

type spec = {
  up : dist;
  down : dist;
  mean_uptime : float;
  mean_downtime : float;
  initially_online_fraction : float;
}

let default_sigma = 1.5
let default_weibull_shape = 0.6
let default_pareto_shape = 1.5

(* Lanczos approximation of ln Gamma (g = 7, n = 9), accurate to well
   below the sampling noise of any churn run; only consulted at spec
   construction time to anchor the Weibull scale on the requested
   mean. *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection: ln G(x) = ln(pi / sin(pi x)) - ln G(1 - x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let two_pi = 2. *. Float.pi

(* Box–Muller, single leg: two uniforms per sample keeps the draw count
   fixed (the {!Pdht_net.Link_model} discipline — no cached second leg,
   whose lifetime would make the stream depend on call interleaving). *)
let standard_normal rng =
  let u1 = 1. -. Rng.unit_float rng (* (0, 1]: log stays finite *) in
  let u2 = Rng.unit_float rng in
  sqrt (-2. *. log u1) *. cos (two_pi *. u2)

let draw rng dist ~mean =
  match dist with
  | Exponential -> Rng.exponential rng ~rate:(1. /. mean)
  | Lognormal { sigma } ->
      (* mu anchored so E[X] = exp(mu + sigma^2/2) = mean. *)
      let mu = log mean -. (sigma *. sigma /. 2.) in
      exp (mu +. (sigma *. standard_normal rng))
  | Weibull { shape } ->
      (* scale = mean / Gamma(1 + 1/shape) so E[X] = mean. *)
      let scale = mean /. exp (log_gamma (1. +. (1. /. shape))) in
      let u = 1. -. Rng.unit_float rng in
      scale *. Float.pow (-.log u) (1. /. shape)
  | Pareto { shape } ->
      (* x_m = mean (shape - 1) / shape so E[X] = mean (shape > 1). *)
      let xm = mean *. (shape -. 1.) /. shape in
      let u = 1. -. Rng.unit_float rng in
      xm /. Float.pow u (1. /. shape)

let is_exponential spec = spec.up = Exponential && spec.down = Exponential

let err fmt = Format.kasprintf (fun m -> Error m) fmt

let validate spec =
  let dist_ok what = function
    | Exponential -> Ok ()
    | Lognormal { sigma } ->
        if Float.is_finite sigma && sigma > 0. then Ok ()
        else err "%s sigma %g must be finite and > 0" what sigma
    | Weibull { shape } ->
        if Float.is_finite shape && shape > 0. then Ok ()
        else err "%s weibull shape %g must be finite and > 0" what shape
    | Pareto { shape } ->
        if Float.is_finite shape && shape > 1. then Ok ()
        else err "%s pareto shape %g must be > 1 (finite mean)" what shape
  in
  match dist_ok "uptime" spec.up with
  | Error _ as e -> e
  | Ok () -> (
      match dist_ok "downtime" spec.down with
      | Error _ as e -> e
      | Ok () ->
          if not (Float.is_finite spec.mean_uptime && spec.mean_uptime > 0.) then
            err "mean uptime %g must be finite and > 0" spec.mean_uptime
          else if not (Float.is_finite spec.mean_downtime && spec.mean_downtime > 0.)
          then err "mean downtime %g must be finite and > 0" spec.mean_downtime
          else if
            not
              (Float.is_finite spec.initially_online_fraction
              && spec.initially_online_fraction >= 0.
              && spec.initially_online_fraction <= 1.)
          then
            err "initially-online fraction %g must be in [0, 1]"
              spec.initially_online_fraction
          else Ok spec)

let availability spec = spec.mean_uptime /. (spec.mean_uptime +. spec.mean_downtime)

(* The grammar is ':'-separated on purpose: session specs must embed in
   a {!Pdht_fault.Plan} clause ([churn:SPEC@T+D]), whose event list
   splits on ',' — a comma anywhere here would truncate the plan. *)

let dist_name = function
  | Exponential -> "exp"
  | Lognormal _ -> "lognormal"
  | Weibull _ -> "weibull"
  | Pareto _ -> "pareto"

let to_string spec =
  let shape_field =
    match spec.up with
    | Exponential -> ""
    | Lognormal { sigma } -> Printf.sprintf ":sigma=%g" sigma
    | Weibull { shape } | Pareto { shape } -> Printf.sprintf ":shape=%g" shape
  in
  Printf.sprintf "%s:up=%g:down=%g%s:on=%g" (dist_name spec.up) spec.mean_uptime
    spec.mean_downtime shape_field spec.initially_online_fraction

let float_of s = try Some (float_of_string (String.trim s)) with _ -> None

let of_string s =
  let bad why = err "session spec %S: %s" s why in
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> bad "empty"
  | name :: fields -> (
      let parse_fields () =
        let up = ref None and down = ref None in
        let shape = ref None and on = ref None in
        let rec go = function
          | [] -> Ok ()
          | field :: rest -> (
              match String.index_opt field '=' with
              | None -> err "session spec %S: field %S is not KEY=VALUE" s field
              | Some eq -> (
                  let key = String.sub field 0 eq in
                  let value =
                    String.sub field (eq + 1) (String.length field - eq - 1)
                  in
                  match (String.trim key, float_of value) with
                  | _, None -> err "session spec %S: bad number in %S" s field
                  | "up", v ->
                      up := v;
                      go rest
                  | "down", v ->
                      down := v;
                      go rest
                  | "sigma", v | "shape", v ->
                      shape := v;
                      go rest
                  | "on", v ->
                      on := v;
                      go rest
                  | k, _ ->
                      err "session spec %S: unknown field %S (up/down/sigma/shape/on)"
                        s k))
        in
        match go fields with
        | Error _ as e -> e
        | Ok () -> Ok (!up, !down, !shape, !on)
      in
      match parse_fields () with
      | Error _ as e -> e
      | Ok (up, down, shape, on) -> (
          let dist =
            match String.trim name with
            | "exp" | "exponential" -> Ok Exponential
            | "lognormal" ->
                Ok (Lognormal { sigma = Option.value shape ~default:default_sigma })
            | "weibull" ->
                Ok (Weibull { shape = Option.value shape ~default:default_weibull_shape })
            | "pareto" ->
                Ok (Pareto { shape = Option.value shape ~default:default_pareto_shape })
            | other -> bad ("unknown distribution " ^ other
                            ^ " (exp / lognormal / weibull / pareto)")
          in
          match dist with
          | Error _ as e -> e
          | Ok dist ->
              if dist = Exponential && shape <> None then
                bad "exp takes no sigma/shape"
              else
                let mean_uptime = Option.value up ~default:600. in
                let mean_downtime = Option.value down ~default:400. in
                let initially_online_fraction =
                  match on with
                  | Some f -> f
                  | None -> mean_uptime /. (mean_uptime +. mean_downtime)
                in
                validate
                  {
                    up = dist;
                    down = dist;
                    mean_uptime;
                    mean_downtime;
                    initially_online_fraction;
                  }))
