(** Session-length distributions for the churn model.

    The paper (and {!Pdht_dht.Churn}'s original form) assumes
    exponential on/off sessions, the model fit to Gnutella traces in
    [MaCa03]; later DHT measurement studies (Grunthal's mainline-DHT
    work, arXiv 1009.3681) find heavy-tailed session lengths —
    lognormal / Weibull / Pareto — under which most sessions are short
    while a long-lived core carries the routing load.  This module
    describes both worlds as data: a {!spec} names the uptime and
    downtime distributions anchored on their means, round-trips through
    a CLI grammar, and draws samples from a caller-supplied RNG.

    Grammar ([of_string] / [to_string], ':'-separated so a spec can
    embed inside a {!Pdht_fault.Plan} clause whose event list splits on
    commas):

    {v DIST[:up=SECONDS][:down=SECONDS][:sigma=X | :shape=X][:on=FRACTION] v}

    where [DIST] is [exp], [lognormal], [weibull] or [pareto]; [up] /
    [down] are the mean session / gap lengths (defaults 600 / 400
    seconds); [sigma] (lognormal, default 1.5) and [shape] (Weibull
    default 0.6, Pareto default 1.5) set the tail; [on] is the fraction
    of peers initially online (default: the stationary availability
    [up / (up + down)]).  Example: [lognormal:up=600:down=400:sigma=2]. *)

type dist =
  | Exponential
  | Lognormal of { sigma : float }  (** log-space std dev, > 0 *)
  | Weibull of { shape : float }    (** k, > 0; k < 1 = heavy tail *)
  | Pareto of { shape : float }     (** alpha, > 1 (finite mean) *)

type spec = {
  up : dist;
  down : dist;
  mean_uptime : float;
  mean_downtime : float;
  initially_online_fraction : float;
}

val draw : Pdht_util.Rng.t -> dist -> mean:float -> float
(** Sample a session length with expectation [mean] (> 0): the
    distribution's free parameter is re-anchored on the mean
    (lognormal [mu = ln mean - sigma^2/2], Weibull
    [scale = mean / Gamma(1 + 1/shape)], Pareto
    [x_m = mean (shape-1)/shape]).  Exponential draws consume exactly
    one uniform; lognormal two; Weibull and Pareto one. *)

val validate : spec -> (spec, string) result
(** Means finite and positive, fraction in [0,1], sigma/shape in their
    distributions' valid ranges (Pareto shape > 1). *)

val availability : spec -> float
(** Stationary expected fraction online: [up / (up + down)]. *)

val is_exponential : spec -> bool
(** Both legs exponential — the spec describes the classic model and a
    driver may route it through the original exponential code path. *)

val of_string : string -> (spec, string) result
(** Parse the grammar above; the result is validated. *)

val to_string : spec -> string
(** Render in [of_string] syntax (round-trips). *)

val default_sigma : float
val default_weibull_shape : float
val default_pareto_shape : float
