type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    (* %.17g round-trips doubles; trim the common integral case to keep
       lines readable. *)
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  end
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, value) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf name;
          Buffer.add_char buf ':';
          to_buffer buf value)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over a string with a mutable cursor. *)

exception Parse_error of string

type cursor = { input : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.input
    && match c.input.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.input && String.sub c.input c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.input then fail c "truncated \\u escape";
                let hex = String.sub c.input c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail c "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* The exporters only escape control characters, so a
                   plain byte is a faithful decode for our round trip. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.input && is_num_char c.input.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.input start (c.pos - start) in
  if text = "" then fail c "expected a number";
  let is_float = String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "malformed number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let name = parse_string_body c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((name, value) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((name, value) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (value :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (value :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string input =
  let c = { input; pos = 0 } in
  match parse_value c with
  | value ->
      skip_ws c;
      if c.pos <> String.length input then Error "trailing input after JSON value"
      else Ok value
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
