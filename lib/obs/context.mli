(** The observability bundle a run threads through every subsystem.

    A metrics registry (always on — counters and histograms are cheap)
    plus a tracer (off unless a sink was attached and it was enabled).
    Constructing a fresh context per run keeps runs isolated and
    deterministic output trivially comparable. *)

type t = {
  registry : Registry.t;
  tracer : Tracer.t;
}

val create : ?tracer:Tracer.t -> unit -> t
(** Fresh registry; [tracer] defaults to a new disabled tracer. *)

val registry : t -> Registry.t
val tracer : t -> Tracer.t
