type t = {
  registry : Registry.t;
  tracer : Tracer.t;
}

let create ?tracer () =
  let tracer = match tracer with Some tr -> tr | None -> Tracer.create () in
  { registry = Registry.create (); tracer }

let registry t = t.registry
let tracer t = t.tracer
