(** Serialize registry snapshots as JSON Lines or CSV.

    JSONL schema, one object per instrument per line:
    {v
    {"type":"counter","name":"messages.query-index","run":R,"time":T,"value":N}
    {"type":"gauge","name":"engine.queue_depth",...,"value":F}
    {"type":"histogram","name":"dht.hops.p-grid",...,"count":N,"mean":F,
     "p50":F,"p90":F,"p95":F,"p99":F,"max":F,"buckets":[[lo,hi,count],...]}
    v}
    [run] and [time] are optional labels stamped on every line so
    snapshot streams from periodic emission stay self-describing;
    [node] adds a ["node_id"] member so per-process emissions (the
    multi-process driver writes one JSONL file per node) remain
    attributable after merging.

    CSV schema: [name,type,value,count,mean,p50,p90,p95,p99,max]; for
    counters and gauges the histogram columns are empty. *)

val metric_json :
  ?run:string -> ?time:float -> ?node:int -> string -> Registry.value -> Json.t
(** One instrument reading as the JSONL object described above. *)

val jsonl_lines :
  ?run:string -> ?time:float -> ?node:int -> Registry.snapshot -> string list

val write_jsonl :
  ?run:string -> ?time:float -> ?node:int -> out_channel -> Registry.snapshot -> unit
(** One line per instrument; does not flush or close. *)

val csv : Registry.snapshot -> string
(** Header plus one row per instrument, newline-terminated. *)

val write_csv : out_channel -> Registry.snapshot -> unit

val to_file :
  ?run:string -> ?time:float -> ?node:int -> path:string -> Registry.snapshot -> unit
(** Create/truncate [path] and write the snapshot; format chosen by
    extension ([.csv] for CSV, JSONL otherwise). *)

val validate_line : Json.t -> (unit, string) result
(** Validate one parsed JSONL line: a present ["node_id"] member must
    be a non-negative integer (whatever the line's kind), trace events
    (member ["cat"]) must decode through {!Event.of_json} with sane
    span/parent ids, timeline windows (member ["tl"]) must match the
    {!Timeline} schema, and any other object passes (metric lines carry
    no invariants beyond JSON well-formedness). *)

val validate_jsonl_file : path:string -> (int, string) result
(** Parse every non-empty line of [path]; [Ok n] gives the number of
    valid lines, [Error] names the first offending line.  Lines that
    look like trace events (member ["cat"]) must additionally decode
    through {!Event.of_json} with consistent span/parent ids, and
    timeline lines (member ["tl"]) must match the {!Timeline} window
    schema.  Used by the CI smoke script so the emitted telemetry is
    checked with the same parser that tests use. *)
