type t = { id : int; parent : int }

let none = -1
let is_none id = id < 0

type allocator = { mutable next : int }

let allocator () = { next = 0 }
let reset a = a.next <- 0
let next_id a = a.next

let issue a ~parent =
  let id = a.next in
  a.next <- id + 1;
  { id; parent }

let root a = issue a ~parent:none
let id s = s.id
let parent s = s.parent
