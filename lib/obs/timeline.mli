(** Windowed time-series recorder.

    Fixed-width windows over simulated time; each window holds one
    float per declared series.  Window [k] covers
    [[k*width, (k+1)*width)].  This generalizes the fault subsystem's
    ad-hoc recovery buckets: the system run feeds per-query counts,
    message costs and latency sums into a timeline, and the summary
    lands in [System.report.timeline] and (via {!jsonl_lines}) in a
    [--timeline-out] JSONL file, giving hit-rate / latency / cost
    curves over time.

    Only windows that were actually touched are materialized, so a
    sparse run costs O(active windows). *)

type window = {
  index : int;          (** window number [k] *)
  t0 : float;           (** inclusive start, [k * width] *)
  t1 : float;           (** exclusive end, [(k+1) * width] *)
  values : float array; (** one slot per series, creation order *)
}

type summary = { width : float; series : string list; windows : window list }
(** Immutable snapshot; [windows] sorted by index, touched windows only. *)

type t

val create : width:float -> series:string list -> t
(** Raises [Invalid_argument] on non-positive width, an empty series
    list, or duplicate series names. *)

val width : t -> float
val series : t -> string list

val series_id : t -> string -> int
(** Pre-resolve a series name to its slot (raises on unknown names);
    call once outside the hot path. *)

val add : t -> now:float -> int -> float -> unit
(** Accumulate into the window containing [now] (counter semantics). *)

val set : t -> now:float -> int -> float -> unit
(** Overwrite in the window containing [now] (gauge semantics:
    last write wins). *)

val summary : t -> summary

val jsonl_lines : summary -> string list
(** One compact JSON object per window:
    [{"tl":k,"t0":...,"t1":...,"<series>":n,...}]. *)

val write_jsonl : out_channel -> summary -> unit

val pp : Format.formatter -> summary -> unit
(** One-line rendering for report footers. *)
