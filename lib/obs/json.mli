(** Minimal JSON tree with a printer and a parser.

    The observability exporters emit JSON Lines; the CI tooling and the
    tests parse them back.  Only what those need is implemented — no
    streaming, no unicode escapes beyond [\uXXXX] pass-through — but
    printing and parsing round-trip for every value the exporters can
    produce.  Kept dependency-free on purpose: the container pins the
    package set, so we cannot lean on yojson. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats become [null],
    keeping every emitted line valid JSON. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error.  Numbers with a
    fraction or exponent parse as [Float], others as [Int]. *)

(** Accessors for tests and tooling; all total. *)

val member : string -> t -> t option
(** First binding of the name in an [Obj]; [None] otherwise. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
