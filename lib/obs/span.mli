(** Causal span identities.

    A span names one unit of causally-related work: a whole PDHT query
    (root span), or one DHT routing, unstructured wave, RPC attempt, or
    repair action performed on its behalf (child spans).  Events carry
    [span] (the event's own span id) and [parent] (the id of the span
    that caused it); a trace file therefore encodes a forest of span
    trees that {!tools/trace_stats} can reconstruct offline.

    Span ids are plain [int]s so they can be threaded through layers
    (e.g. [lib/overlay]) that must not depend on this library.  Ids are
    handed out by a sequential {!allocator} owned by the {!Tracer}:
    allocation only ever happens on the single simulation thread of one
    run, in event-emission order, so traces are deterministic — byte
    identical across [-j] values (the parallel runner gives every task
    its own tracer and only single-spec batches capture traces at all). *)

type t = { id : int; parent : int }

val none : int
(** The id meaning "no span": [-1], the elided JSONL default. *)

val is_none : int -> bool

type allocator

val allocator : unit -> allocator
(** Fresh allocator; the first issued span gets id 0. *)

val reset : allocator -> unit
val next_id : allocator -> int

val issue : allocator -> parent:int -> t
(** Allocate the next sequential id with the given parent span id
    (use {!none} for a root). *)

val root : allocator -> t
(** [issue a ~parent:none]. *)

val id : t -> int
val parent : t -> int
