let stamp ?run ?time fields =
  let run_field = match run with Some r -> [ ("run", Json.String r) ] | None -> [] in
  let time_field = match time with Some t -> [ ("time", Json.Float t) ] | None -> [] in
  fields @ run_field @ time_field

let metric_json ?run ?time name value =
  match value with
  | Registry.Counter_v n ->
      Json.Obj
        (stamp ?run ?time
           [ ("type", Json.String "counter"); ("name", Json.String name);
             ("value", Json.Int n) ])
  | Registry.Gauge_v v ->
      Json.Obj
        (stamp ?run ?time
           [ ("type", Json.String "gauge"); ("name", Json.String name);
             ("value", Json.Float v) ])
  | Registry.Histogram_v s ->
      let summary_fields =
        match Histogram.summary_to_json s with Json.Obj fields -> fields | _ -> []
      in
      Json.Obj
        (stamp ?run ?time
           ([ ("type", Json.String "histogram"); ("name", Json.String name) ]
           @ summary_fields))

let jsonl_lines ?run ?time snapshot =
  List.map (fun (name, value) -> Json.to_string (metric_json ?run ?time name value)) snapshot

let write_jsonl ?run ?time channel snapshot =
  List.iter
    (fun line ->
      output_string channel line;
      output_char channel '\n')
    (jsonl_lines ?run ?time snapshot)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_header = "name,type,value,count,mean,p50,p90,p95,p99,max"

let csv_row name value =
  match value with
  | Registry.Counter_v n ->
      Printf.sprintf "%s,counter,%d,,,,,,," (csv_escape name) n
  | Registry.Gauge_v v -> Printf.sprintf "%s,gauge,%g,,,,,,," (csv_escape name) v
  | Registry.Histogram_v (s : Histogram.summary) ->
      Printf.sprintf "%s,histogram,,%d,%g,%g,%g,%g,%g,%g" (csv_escape name) s.count
        s.mean s.p50 s.p90 s.p95 s.p99 s.max

let csv snapshot =
  String.concat "\n" (csv_header :: List.map (fun (n, v) -> csv_row n v) snapshot) ^ "\n"

let write_csv channel snapshot = output_string channel (csv snapshot)

let to_file ?run ?time ~path snapshot =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      if Filename.check_suffix path ".csv" then write_csv channel snapshot
      else write_jsonl ?run ?time channel snapshot)

let validate_jsonl_file ~path =
  let channel = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in channel)
    (fun () ->
      let valid = ref 0 in
      let line_no = ref 0 in
      let result = ref (Ok 0) in
      (try
         while !result = Ok 0 do
           let line = input_line channel in
           incr line_no;
           if String.trim line <> "" then
             match Json.of_string line with
             | Ok _ -> incr valid
             | Error msg ->
                 result := Error (Printf.sprintf "line %d: %s" !line_no msg)
         done
       with End_of_file -> ());
      match !result with Ok _ -> Ok !valid | Error _ as e -> e)
