let stamp ?run ?time ?node fields =
  let run_field = match run with Some r -> [ ("run", Json.String r) ] | None -> [] in
  let time_field = match time with Some t -> [ ("time", Json.Float t) ] | None -> [] in
  let node_field =
    match node with Some k -> [ ("node_id", Json.Int k) ] | None -> []
  in
  fields @ run_field @ time_field @ node_field

let metric_json ?run ?time ?node name value =
  match value with
  | Registry.Counter_v n ->
      Json.Obj
        (stamp ?run ?time ?node
           [ ("type", Json.String "counter"); ("name", Json.String name);
             ("value", Json.Int n) ])
  | Registry.Gauge_v v ->
      Json.Obj
        (stamp ?run ?time ?node
           [ ("type", Json.String "gauge"); ("name", Json.String name);
             ("value", Json.Float v) ])
  | Registry.Histogram_v s ->
      let summary_fields =
        match Histogram.summary_to_json s with Json.Obj fields -> fields | _ -> []
      in
      Json.Obj
        (stamp ?run ?time ?node
           ([ ("type", Json.String "histogram"); ("name", Json.String name) ]
           @ summary_fields))

let jsonl_lines ?run ?time ?node snapshot =
  List.map
    (fun (name, value) -> Json.to_string (metric_json ?run ?time ?node name value))
    snapshot

let write_jsonl ?run ?time ?node channel snapshot =
  List.iter
    (fun line ->
      output_string channel line;
      output_char channel '\n')
    (jsonl_lines ?run ?time ?node snapshot)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_header = "name,type,value,count,mean,p50,p90,p95,p99,max"

let csv_row name value =
  match value with
  | Registry.Counter_v n ->
      Printf.sprintf "%s,counter,%d,,,,,,," (csv_escape name) n
  | Registry.Gauge_v v -> Printf.sprintf "%s,gauge,%g,,,,,,," (csv_escape name) v
  | Registry.Histogram_v (s : Histogram.summary) ->
      Printf.sprintf "%s,histogram,,%d,%g,%g,%g,%g,%g,%g" (csv_escape name) s.count
        s.mean s.p50 s.p90 s.p95 s.p99 s.max

let csv snapshot =
  String.concat "\n" (csv_header :: List.map (fun (n, v) -> csv_row n v) snapshot) ^ "\n"

let write_csv channel snapshot = output_string channel (csv snapshot)

let to_file ?run ?time ?node ~path snapshot =
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      if Filename.check_suffix path ".csv" then write_csv channel snapshot
      else write_jsonl ?run ?time ?node channel snapshot)

(* Schema checks beyond well-formed JSON: trace-event lines (member
   "cat") must round-trip through the event codec with sane span ids,
   and timeline lines (member "tl") must carry a non-negative window
   index, an ordered [t0, t1) range, and numeric series values. *)
let validate_event json =
  match Event.of_json json with
  | Error _ as e -> e
  | Ok e ->
      if e.Event.span < -1 then Error "event: span must be >= -1"
      else if e.Event.parent < -1 then Error "event: parent must be >= -1"
      else if e.Event.span = -1 && e.Event.parent >= 0 then
        Error "event: parent set on a span-less event"
      else Ok ()

let validate_timeline json =
  let num name =
    match Option.bind (Json.member name json) Json.to_float_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "timeline: missing or non-numeric %S" name)
  in
  match Option.bind (Json.member "tl" json) Json.to_int_opt with
  | None -> Error "timeline: \"tl\" must be an integer"
  | Some k when k < 0 -> Error "timeline: negative window index"
  | Some _ -> (
      match (num "t0", num "t1") with
      | Error _ as e, _ | _, (Error _ as e) -> e
      | Ok t0, Ok t1 ->
          if not (t1 > t0) then Error "timeline: t1 must exceed t0"
          else
            let bad_series =
              match json with
              | Json.Obj fields ->
                  List.find_opt
                    (fun (name, v) ->
                      name <> "tl" && name <> "t0" && name <> "t1"
                      && Json.to_float_opt v = None)
                    fields
              | _ -> None
            in
            (match bad_series with
            | Some (name, _) ->
                Error (Printf.sprintf "timeline: non-numeric series %S" name)
            | None -> Ok ()))

(* Per-node JSONL (process driver) stamps every line with the emitting
   node; the merge tooling keys on it, so a present [node_id] must be a
   non-negative integer whatever the line's kind. *)
let validate_node_id json =
  match Json.member "node_id" json with
  | None -> Ok ()
  | Some v -> (
      match Json.to_int_opt v with
      | Some k when k >= 0 -> Ok ()
      | Some _ -> Error "node_id: must be non-negative"
      | None -> Error "node_id: must be an integer")

let validate_line json =
  match validate_node_id json with
  | Error _ as e -> e
  | Ok () ->
      if Json.member "cat" json <> None then validate_event json
      else if Json.member "tl" json <> None then validate_timeline json
      else Ok ()

let validate_jsonl_file ~path =
  let channel = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in channel)
    (fun () ->
      let valid = ref 0 in
      let line_no = ref 0 in
      let result = ref (Ok 0) in
      (try
         while !result = Ok 0 do
           let line = input_line channel in
           incr line_no;
           if String.trim line <> "" then
             match
               Result.bind (Json.of_string line) (fun json ->
                   Result.map (fun () -> json) (validate_line json))
             with
             | Ok _ -> incr valid
             | Error msg ->
                 result := Error (Printf.sprintf "line %d: %s" !line_no msg)
         done
       with End_of_file -> ());
      match !result with Ok _ -> Ok !valid | Error _ as e -> e)
