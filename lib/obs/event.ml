type category =
  | Query
  | Dht_lookup
  | Replica_flood
  | Broadcast
  | Index_insert
  | Ttl_reset
  | Gossip
  | Maintenance
  | Churn
  | Engine
  | Net
  | Fault

type outcome = Hit | Miss | Found | Not_found | Completed | Dropped

type t = {
  time : float;
  category : category;
  peer : int;
  key_index : int;
  hops : int;
  messages : int;
  outcome : outcome;
  detail : string;
  span : int;
  parent : int;
}

let make ?(peer = -1) ?(key_index = -1) ?(hops = 0) ?(messages = 0)
    ?(outcome = Completed) ?(detail = "") ?(span = -1) ?(parent = -1) ~time
    category =
  { time; category; peer; key_index; hops; messages; outcome; detail; span; parent }

let all_categories =
  [ Query; Dht_lookup; Replica_flood; Broadcast; Index_insert; Ttl_reset;
    Gossip; Maintenance; Churn; Engine; Net; Fault ]

let category_label = function
  | Query -> "query"
  | Dht_lookup -> "dht-lookup"
  | Replica_flood -> "replica-flood"
  | Broadcast -> "broadcast"
  | Index_insert -> "index-insert"
  | Ttl_reset -> "ttl-reset"
  | Gossip -> "gossip"
  | Maintenance -> "maintenance"
  | Churn -> "churn"
  | Engine -> "engine"
  | Net -> "net"
  | Fault -> "fault"

let category_of_label s =
  List.find_opt (fun c -> category_label c = String.lowercase_ascii s) all_categories

let all_outcomes = [ Hit; Miss; Found; Not_found; Completed; Dropped ]

let outcome_label = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Found -> "found"
  | Not_found -> "not-found"
  | Completed -> "completed"
  | Dropped -> "dropped"

let outcome_of_label s =
  List.find_opt (fun o -> outcome_label o = String.lowercase_ascii s) all_outcomes

let to_json e =
  let base =
    [ ("t", Json.Float e.time); ("cat", Json.String (category_label e.category)) ]
  in
  (* Default-valued fields are elided: a trace file is mostly events,
     so line size matters more than schema uniformity. *)
  let opt name v default to_j = if v = default then [] else [ (name, to_j v) ] in
  Json.Obj
    (base
    @ opt "peer" e.peer (-1) (fun p -> Json.Int p)
    @ opt "key" e.key_index (-1) (fun k -> Json.Int k)
    @ opt "hops" e.hops 0 (fun h -> Json.Int h)
    @ opt "msgs" e.messages 0 (fun m -> Json.Int m)
    @ opt "outcome" e.outcome Completed (fun o -> Json.String (outcome_label o))
    @ opt "detail" e.detail "" (fun d -> Json.String d)
    @ opt "span" e.span (-1) (fun s -> Json.Int s)
    @ opt "parent" e.parent (-1) (fun p -> Json.Int p))

let of_json json =
  match json with
  | Json.Obj _ -> (
      let time = Option.bind (Json.member "t" json) Json.to_float_opt in
      let category =
        Option.bind
          (Option.bind (Json.member "cat" json) Json.to_string_opt)
          category_of_label
      in
      match (time, category) with
      | Some time, Some category ->
          let int_field name default =
            match Option.bind (Json.member name json) Json.to_int_opt with
            | Some i -> i
            | None -> default
          in
          let outcome =
            match
              Option.bind
                (Option.bind (Json.member "outcome" json) Json.to_string_opt)
                outcome_of_label
            with
            | Some o -> o
            | None -> Completed
          in
          let detail =
            match Option.bind (Json.member "detail" json) Json.to_string_opt with
            | Some d -> d
            | None -> ""
          in
          Ok
            {
              time;
              category;
              peer = int_field "peer" (-1);
              key_index = int_field "key" (-1);
              hops = int_field "hops" 0;
              messages = int_field "msgs" 0;
              outcome;
              detail;
              span = int_field "span" (-1);
              parent = int_field "parent" (-1);
            }
      | None, _ -> Error "event: missing or malformed \"t\""
      | _, None -> Error "event: missing or unknown \"cat\"")
  | _ -> Error "event: expected an object"

let pp ppf e =
  Format.fprintf ppf "[%10.3f] %-12s" e.time (category_label e.category);
  if e.peer >= 0 then Format.fprintf ppf " peer=%d" e.peer;
  if e.key_index >= 0 then Format.fprintf ppf " key=%d" e.key_index;
  if e.hops > 0 then Format.fprintf ppf " hops=%d" e.hops;
  if e.messages > 0 then Format.fprintf ppf " msgs=%d" e.messages;
  if e.outcome <> Completed then
    Format.fprintf ppf " %s" (outcome_label e.outcome);
  if e.span >= 0 then Format.fprintf ppf " span=%d" e.span;
  if e.parent >= 0 then Format.fprintf ppf " parent=%d" e.parent;
  if e.detail <> "" then Format.fprintf ppf " %s" e.detail

let to_line e = Format.asprintf "%a" pp e
