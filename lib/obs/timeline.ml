type window = { index : int; t0 : float; t1 : float; values : float array }

type summary = { width : float; series : string list; windows : window list }

type t = {
  width : float;
  series : string array;
  cells : (int, float array) Hashtbl.t; (* window index -> per-series values *)
}

let create ~width ~series =
  if not (width > 0.) then invalid_arg "Timeline.create: width must be > 0";
  if series = [] then invalid_arg "Timeline.create: no series";
  let arr = Array.of_list series in
  Array.iteri
    (fun i name ->
      for j = 0 to i - 1 do
        if arr.(j) = name then
          invalid_arg ("Timeline.create: duplicate series " ^ name)
      done)
    arr;
  { width; series = arr; cells = Hashtbl.create 64 }

let width t = t.width
let series t = Array.to_list t.series

let series_id t name =
  let rec find i =
    if i >= Array.length t.series then
      invalid_arg ("Timeline.series_id: unknown series " ^ name)
    else if t.series.(i) = name then i
    else find (i + 1)
  in
  find 0

let cell t ~now =
  let k = int_of_float (Float.floor (now /. t.width)) in
  let k = if k < 0 then 0 else k in
  match Hashtbl.find_opt t.cells k with
  | Some v -> v
  | None ->
      let v = Array.make (Array.length t.series) 0. in
      Hashtbl.add t.cells k v;
      v

let add t ~now id v =
  let c = cell t ~now in
  c.(id) <- c.(id) +. v

let set t ~now id v =
  let c = cell t ~now in
  c.(id) <- v

let summary t =
  let windows =
    Hashtbl.fold
      (fun k v acc ->
        { index = k; t0 = float_of_int k *. t.width;
          t1 = float_of_int (k + 1) *. t.width; values = Array.copy v }
        :: acc)
      t.cells []
  in
  {
    width = t.width;
    series = Array.to_list t.series;
    windows = List.sort (fun a b -> compare a.index b.index) windows;
  }

(* JSONL: one object per window, keyed "tl"/"t0"/"t1" plus one numeric
   member per series.  Integral values print as ints to keep lines
   small and stable. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Json.Int (int_of_float v)
  else Json.Float v

let window_json (s : summary) w =
  Json.Obj
    ([ ("tl", Json.Int w.index); ("t0", num w.t0); ("t1", num w.t1) ]
    @ List.mapi (fun i name -> (name, num w.values.(i))) s.series)

let jsonl_lines (s : summary) =
  List.map (fun w -> Json.to_string (window_json s w)) s.windows

let write_jsonl channel s =
  List.iter
    (fun line ->
      output_string channel line;
      output_char channel '\n')
    (jsonl_lines s)

let pp ppf (s : summary) =
  Format.fprintf ppf "timeline: windows=%d width=%gs series=%s"
    (List.length s.windows) s.width
    (String.concat "," s.series)
