type t = {
  gamma : float;
  inv_log_gamma : float;
  mutable counts : int array; (* counts.(0) = values in [0,1) *)
  mutable used : int;         (* highest occupied bucket + 1 *)
  mutable count : int;
  (* All-float record, so the per-record accumulator stores stay flat:
     mutable float fields of a mixed record would re-box on every
     [record] call. *)
  acc : acc;
}
and acc = { mutable sum : float; mutable min : float; mutable max : float }

let default_gamma = Float.exp (Float.log 2. /. 8.)

let create ?(gamma = default_gamma) () =
  if not (gamma > 1.) then invalid_arg "Histogram.create: gamma must be > 1";
  {
    gamma;
    inv_log_gamma = 1. /. Float.log gamma;
    counts = [||];
    used = 0;
    count = 0;
    acc = { sum = 0.; min = infinity; max = neg_infinity };
  }

let gamma t = t.gamma

let bucket_index t v =
  if v < 1. then 0
  else 1 + int_of_float (Float.floor (Float.log v *. t.inv_log_gamma))

let record t v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg "Histogram.record: value must be finite and non-negative";
  let idx = bucket_index t v in
  if idx >= Array.length t.counts then begin
    let bigger = Array.make (max 32 (2 * (idx + 1))) 0 in
    Array.blit t.counts 0 bigger 0 (Array.length t.counts);
    t.counts <- bigger
  end;
  t.counts.(idx) <- t.counts.(idx) + 1;
  if idx + 1 > t.used then t.used <- idx + 1;
  t.count <- t.count + 1;
  let acc = t.acc in
  acc.sum <- acc.sum +. v;
  if v < acc.min then acc.min <- v;
  if v > acc.max then acc.max <- v

let record_int t n = record t (float_of_int n)

let count t = t.count
let sum t = t.acc.sum
let mean t = if t.count = 0 then 0. else t.acc.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0. else t.acc.min
let max_value t = if t.count = 0 then 0. else t.acc.max

let bucket_lower t i = if i = 0 then 0. else t.gamma ** float_of_int (i - 1)
let bucket_upper t i = if i = 0 then 1. else t.gamma ** float_of_int i

(* Representative value of a bucket: 0.5 for the [0,1) bucket, the
   geometric midpoint otherwise. *)
let bucket_mid t i =
  if i = 0 then 0.5 else Float.sqrt (bucket_lower t i *. bucket_upper t i)

let quantile t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.quantile: p outside [0,1]";
  if t.count = 0 then 0.
  else begin
    (* Rank of the requested order statistic, 1-based, matching the
       nearest-rank definition. *)
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int t.count)))
    in
    let idx = ref 0 in
    let seen = ref 0 in
    (try
       for i = 0 to t.used - 1 do
         seen := !seen + t.counts.(i);
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let estimate = bucket_mid t !idx in
    Float.min t.acc.max (Float.max t.acc.min estimate)
  end

let nonzero_buckets t =
  let acc = ref [] in
  for i = t.used - 1 downto 0 do
    if t.counts.(i) > 0 then
      acc := (bucket_lower t i, bucket_upper t i, t.counts.(i)) :: !acc
  done;
  !acc

let merge ~into src =
  if into == src then invalid_arg "Histogram.merge: cannot merge a histogram into itself";
  if into.gamma <> src.gamma then
    invalid_arg
      (Printf.sprintf "Histogram.merge: gamma mismatch (%g vs %g)" into.gamma src.gamma);
  if src.count > 0 then begin
    if src.used > Array.length into.counts then begin
      let bigger = Array.make (max 32 (2 * src.used)) 0 in
      Array.blit into.counts 0 bigger 0 (Array.length into.counts);
      into.counts <- bigger
    end;
    for i = 0 to src.used - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    if src.used > into.used then into.used <- src.used;
    into.count <- into.count + src.count;
    into.acc.sum <- into.acc.sum +. src.acc.sum;
    if src.acc.min < into.acc.min then into.acc.min <- src.acc.min;
    if src.acc.max > into.acc.max then into.acc.max <- src.acc.max
  end

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.used <- 0;
  t.count <- 0;
  t.acc.sum <- 0.;
  t.acc.min <- infinity;
  t.acc.max <- neg_infinity

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summary (t : t) =
  {
    count = t.count;
    mean = mean t;
    p50 = quantile t 0.5;
    p90 = quantile t 0.9;
    p95 = quantile t 0.95;
    p99 = quantile t 0.99;
    max = max_value t;
  }

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p95", Json.Float s.p95);
      ("p99", Json.Float s.p99);
      ("max", Json.Float s.max);
    ]

let to_json t =
  let s = summary t in
  let buckets =
    Json.List
      (List.map
         (fun (lo, hi, c) -> Json.List [ Json.Float lo; Json.Float hi; Json.Int c ])
         (nonzero_buckets t))
  in
  match summary_to_json s with
  | Json.Obj fields -> Json.Obj (fields @ [ ("buckets", buckets) ])
  | other -> other

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f p50=%.1f p90=%.1f p95=%.1f p99=%.1f max=%.1f"
    s.count s.mean s.p50 s.p90 s.p95 s.p99 s.max
