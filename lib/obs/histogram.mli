(** Streaming log-bucketed histogram.

    Replaces the simulator's sort-an-unbounded-list percentile with an
    O(1)-memory sketch: values land in geometrically sized buckets
    (ratio [gamma] between consecutive bucket bounds), so any quantile
    is off by at most one bucket — a bounded relative error of [gamma]
    — regardless of how many samples were recorded.  The exact [min],
    [max], [count] and [sum] are tracked on the side.

    Designed for the simulator's non-negative measurements (messages
    per query, DHT hops, session lengths, throughput samples). *)

type t

val default_gamma : float
(** [2**(1/8)] — about 9% relative bucket width, < 200 buckets out to
    ten million. *)

val create : ?gamma:float -> unit -> t
(** [gamma] must be > 1; smaller means finer quantiles and more
    buckets. *)

val gamma : t -> float

val record : t -> float -> unit
(** @raise Invalid_argument on negative or non-finite values. *)

val record_int : t -> int -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** 0 when empty. *)

val max_value : t -> float
(** 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [0,1]: the geometric midpoint of the
    bucket holding the [p]-th ranked sample, clamped to the exact
    observed [min]/[max].  0 when empty.
    @raise Invalid_argument when [p] is outside [0,1]. *)

val bucket_index : t -> float -> int
(** The bucket a value would land in (bucket 0 holds values < 1).
    Exposed so tests can assert the "within one bucket" guarantee. *)

val nonzero_buckets : t -> (float * float * int) list
(** [(lower, upper, count)] for every bucket with a sample, in value
    order.  Bucket 0 is [(0, 1, _)]; bucket [i>0] is
    [(gamma^(i-1), gamma^i, _)]. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every sample of [src] to [into],
    bucket-for-bucket: the result is indistinguishable (same buckets,
    count, min, max; sum up to float association) from having recorded
    the concatenation of both sample streams into one histogram.  [src]
    is left untouched.  The workhorse behind {!Registry.merge_into},
    which folds per-task observability contexts from parallel runs back
    into one registry.
    @raise Invalid_argument if the two histograms have different
    [gamma]s, or if [src] and [into] are the same histogram. *)

val reset : t -> unit

(** The fixed set of headline statistics the exporters and reports
    carry around. *)
type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summary : t -> summary
val summary_to_json : summary -> Json.t
val to_json : t -> Json.t
(** The summary plus the nonzero bucket list, for JSONL export. *)

val pp_summary : Format.formatter -> summary -> unit
