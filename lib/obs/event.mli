(** Typed trace events.

    One flat record covers every instrumentation point in the simulator:
    the category says which subsystem spoke, and the numeric fields are
    interpreted per category (documented on {!category}).  Flat rather
    than per-category payloads so sinks, filters and the JSONL codec
    stay trivial and allocation per event stays at one record. *)

type category =
  | Query         (** one end-to-end PDHT query; [messages] = total cost *)
  | Dht_lookup    (** one structured-overlay routing; [hops], [messages],
                      [detail] = backend label (or ["contact"] for the
                      entry-point hop of a query) *)
  | Replica_flood (** one flood over a key's replica subnetwork;
                      [messages] = flood cost *)
  | Broadcast     (** one unstructured search; [messages] = reach *)
  | Index_insert  (** key installed into the partial index *)
  | Ttl_reset     (** a stored key's expiry pushed out by a query hit *)
  | Gossip        (** one rumor spread; [hops] = rounds *)
  | Maintenance   (** one maintenance tick; [messages] = probes sent *)
  | Churn         (** one session transition; [detail] = "online"/"offline" *)
  | Engine        (** periodic engine snapshot; [messages] = events
                      processed so far, [hops] = event-queue depth *)
  | Net           (** one network message or RPC attempt; [peer] = source,
                      [key_index] = destination peer, [hops] = attempt
                      number (RPCs), [outcome] = [Completed] delivered /
                      [Dropped] lost, [detail] = "send"/"rpc"/"timeout" *)
  | Fault         (** one fault-injection action on a peer; [detail] =
                      "crash"/"recover" *)

type outcome = Hit | Miss | Found | Not_found | Completed | Dropped

type t = {
  time : float;     (** simulated seconds *)
  category : category;
  peer : int;       (** acting peer; -1 when not applicable *)
  key_index : int;  (** workload key; -1 when not applicable *)
  hops : int;       (** category-specific, see above; 0 default *)
  messages : int;   (** messages this event accounts for; 0 default *)
  outcome : outcome;
  detail : string;  (** category-specific label; "" default *)
  span : int;       (** this event's own span id ({!Span}); -1 untraced *)
  parent : int;     (** causing span's id; -1 for roots and untraced *)
}

val make :
  ?peer:int ->
  ?key_index:int ->
  ?hops:int ->
  ?messages:int ->
  ?outcome:outcome ->
  ?detail:string ->
  ?span:int ->
  ?parent:int ->
  time:float ->
  category ->
  t
(** Defaults: [peer = -1], [key_index = -1], [hops = 0], [messages = 0],
    [outcome = Completed], [detail = ""], [span = -1], [parent = -1]. *)

val all_categories : category list
val category_label : category -> string
val category_of_label : string -> category option
val outcome_label : outcome -> string
val outcome_of_label : string -> outcome option

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; missing optional fields take their [make]
    defaults. *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering (used by {!Pdht_sim.Trace.events}). *)

val to_line : t -> string
(** [pp] into a string. *)
