type counter = { c_name : string; mutable c_value : int }
type gauge = { mutable g_value : float }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of Histogram.t

type t = { table : (string, instrument) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let kind_label = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_histogram _ -> "histogram"

let wrong_kind name found wanted =
  invalid_arg
    (Printf.sprintf "Registry: %S is a %s, not a %s" name (kind_label found) wanted)

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (I_counter c) -> c
  | Some other -> wrong_kind name other "counter"
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.table name (I_counter c);
      c

let incr c n =
  if n < 0 then invalid_arg (Printf.sprintf "Registry.incr %S: negative count" c.c_name);
  c.c_value <- c.c_value + n

let counter_value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (I_gauge g) -> g
  | Some other -> wrong_kind name other "gauge"
  | None ->
      let g = { g_value = 0. } in
      Hashtbl.replace t.table name (I_gauge g);
      g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram ?gamma t name =
  match Hashtbl.find_opt t.table name with
  | Some (I_histogram h) -> h
  | Some other -> wrong_kind name other "histogram"
  | None ->
      let h = Histogram.create ?gamma () in
      Hashtbl.replace t.table name (I_histogram h);
      h

let find_histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (I_histogram h) -> Some h
  | Some _ | None -> None

let counter_value_by_name t name =
  match Hashtbl.find_opt t.table name with
  | Some (I_counter c) -> Some c.c_value
  | Some _ | None -> None

let gauge_value_by_name t name =
  match Hashtbl.find_opt t.table name with
  | Some (I_gauge g) -> Some g.g_value
  | Some _ | None -> None

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.summary

type snapshot = (string * value) list

let read = function
  | I_counter c -> Counter_v c.c_value
  | I_gauge g -> Gauge_v g.g_value
  | I_histogram h -> Histogram_v (Histogram.summary h)

let snapshot t =
  Hashtbl.fold (fun name inst acc -> (name, read inst) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  List.map
    (fun (name, value) ->
      match value with
      | Counter_v n ->
          let prior =
            match List.assoc_opt name before with Some (Counter_v m) -> m | _ -> 0
          in
          (name, Counter_v (n - prior))
      | Gauge_v _ | Histogram_v _ -> (name, value))
    after

let merge_into src ~into =
  if src.table == into.table then
    invalid_arg "Registry.merge_into: cannot merge a registry into itself";
  (* Name order makes the merge deterministic regardless of hash-table
     iteration order — parallel batches must fold to identical state. *)
  let instruments =
    Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) src.table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, inst) ->
      match inst with
      | I_counter c -> incr (counter into name) c.c_value
      | I_gauge g -> set_gauge (gauge into name) g.g_value
      | I_histogram h ->
          Histogram.merge ~into:(histogram ~gamma:(Histogram.gamma h) into name) h)
    instruments

let reset t =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | I_counter c -> c.c_value <- 0
      | I_gauge g -> g.g_value <- 0.
      | I_histogram h -> Histogram.reset h)
    t.table

let fold t ~init ~f =
  List.fold_left (fun acc (name, value) -> f acc name value) init (snapshot t)

let pp_snapshot ppf snap =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (name, value) ->
      match value with
      | Counter_v n -> Format.fprintf ppf "%-40s %d@," name n
      | Gauge_v v -> Format.fprintf ppf "%-40s %g@," name v
      | Histogram_v s -> Format.fprintf ppf "%-40s %a@," name Histogram.pp_summary s)
    snap;
  Format.pp_close_box ppf ()
