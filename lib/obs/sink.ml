type t = Event.t -> unit

module Ring = struct
  type ring = {
    slots : Event.t option array;
    mutable next : int;   (* write position *)
    mutable stored : int; (* <= capacity *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Sink.Ring.create: capacity must be >= 1";
    { slots = Array.make capacity None; next = 0; stored = 0 }

  let capacity r = Array.length r.slots
  let length r = r.stored

  let push r e =
    r.slots.(r.next) <- Some e;
    r.next <- (r.next + 1) mod Array.length r.slots;
    if r.stored < Array.length r.slots then r.stored <- r.stored + 1

  let sink r = push r

  let contents r =
    let cap = Array.length r.slots in
    let start = (r.next - r.stored + cap) mod cap in
    List.init r.stored (fun i ->
        match r.slots.((start + i) mod cap) with
        | Some e -> e
        | None -> assert false)

  let clear r =
    Array.fill r.slots 0 (Array.length r.slots) None;
    r.next <- 0;
    r.stored <- 0
end

let jsonl channel e =
  output_string channel (Json.to_string (Event.to_json e));
  output_char channel '\n'

let callback f = f
