(** Named metrics: counters, gauges and streaming histograms.

    One registry travels through a whole simulation run; every subsystem
    finds-or-creates its instruments by name ([counter], [gauge],
    [histogram] are idempotent), so instrumentation points never need
    central declaration.  Snapshots are plain association lists that can
    be diffed, printed and exported ({!Export}). *)

type t

type counter
type gauge

val create : unit -> t

val counter : t -> string -> counter
(** Find or create.  @raise Invalid_argument if the name already names
    a different instrument kind. *)

val incr : counter -> int -> unit
(** @raise Invalid_argument on negative increments. *)

val counter_value : counter -> int

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?gamma:float -> t -> string -> Histogram.t
(** Find or create; [gamma] is only used on creation. *)

val find_histogram : t -> string -> Histogram.t option
val counter_value_by_name : t -> string -> int option
val gauge_value_by_name : t -> string -> float option

(** A point-in-time reading of every instrument, sorted by name. *)
type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of Histogram.summary

type snapshot = (string * value) list

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter values are subtracted ([after] minus [before], missing
    [before] entries count as 0); gauges and histograms keep their
    [after] reading.  Instruments absent from [after] are dropped. *)

val merge_into : t -> into:t -> unit
(** [merge_into src ~into] folds every instrument of [src] into [into],
    creating instruments that don't exist there yet: counters add,
    histograms merge sample-for-sample ({!Histogram.merge}), and gauges
    take [src]'s reading (last merge wins — gauges are point-in-time).
    [src] is left untouched.  Deterministic: instruments are merged in
    name order, so folding the per-task registries of a parallel batch
    in task order always yields the same state.
    @raise Invalid_argument if a name already names a different
    instrument kind in [into], if histogram [gamma]s differ, or if
    [src] and [into] are the same registry. *)

val reset : t -> unit
(** Counters to 0, gauges to 0, histograms emptied.  Names survive. *)

val fold : t -> init:'a -> f:('a -> string -> value -> 'a) -> 'a
(** In name order. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
