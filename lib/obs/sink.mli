(** Where trace events go.

    A sink is just a consumer function; the three stock implementations
    cover the simulator's needs: a bounded in-memory ring for debugging
    and tests, a JSON Lines channel writer for offline analysis, and a
    raw callback for live consumers (e.g. the adaptive controller or a
    progress display). *)

type t = Event.t -> unit

module Ring : sig
  (** Fixed-capacity circular buffer keeping the newest events. *)

  type ring

  val create : capacity:int -> ring
  (** @raise Invalid_argument when [capacity < 1]. *)

  val sink : ring -> t
  val length : ring -> int
  val capacity : ring -> int
  val contents : ring -> Event.t list
  (** Oldest first. *)

  val clear : ring -> unit
end

val jsonl : out_channel -> t
(** One compact JSON object per event, newline-terminated.  The caller
    owns the channel (flushing/closing). *)

val callback : (Event.t -> unit) -> t
