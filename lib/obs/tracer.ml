type t = {
  mutable enabled : bool;
  mutable filter : Event.category list option;
  mutable sinks : Sink.t list; (* registration order *)
  mutable emitted : int;
}

let create ?(enabled = false) () = { enabled; filter = None; sinks = []; emitted = 0 }
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled
let set_filter t f = t.filter <- f
let filter t = t.filter
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let passes t category =
  match t.filter with None -> true | Some cats -> List.memq category cats

let active t category = t.enabled && t.sinks <> [] && passes t category

let emit t (e : Event.t) =
  if active t e.Event.category then begin
    t.emitted <- t.emitted + 1;
    List.iter (fun sink -> sink e) t.sinks
  end

let events_emitted t = t.emitted
