type t = {
  mutable enabled : bool;
  mutable filter : Event.category list option;
  mutable sinks : Sink.t list; (* registration order *)
  mutable emitted : int;
  mutable sample_every : int;
  mutable sampled_ops : int; (* root-span requests seen while active *)
  spans : Span.allocator;
  mutable flushers : (unit -> unit) list; (* registration order *)
}

let create ?(enabled = false) () =
  {
    enabled;
    filter = None;
    sinks = [];
    emitted = 0;
    sample_every = 1;
    sampled_ops = 0;
    spans = Span.allocator ();
    flushers = [];
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled
let set_filter t f = t.filter <- f
let filter t = t.filter
let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let passes t category =
  match t.filter with None -> true | Some cats -> List.memq category cats

let active t category = t.enabled && t.sinks <> [] && passes t category

let emit t (e : Event.t) =
  if active t e.Event.category then begin
    t.emitted <- t.emitted + 1;
    List.iter (fun sink -> sink e) t.sinks
  end

let events_emitted t = t.emitted

(* -- spans and sampling -------------------------------------------- *)

let set_sampling t every =
  if every < 1 then invalid_arg "Tracer.set_sampling: every must be >= 1";
  t.sample_every <- every

let sampling t = t.sample_every
let tracing t = t.enabled && t.sinks <> []

let sample_root t =
  if not (tracing t) then None
  else begin
    let n = t.sampled_ops in
    t.sampled_ops <- n + 1;
    if n mod t.sample_every = 0 then Some (Span.root t.spans) else None
  end

let root_span t = if tracing t then Some (Span.root t.spans) else None
let child_span t ~parent = Span.issue t.spans ~parent

(* -- flushers ------------------------------------------------------ *)

let add_flusher t f = t.flushers <- t.flushers @ [ f ]
let has_flushers t = t.flushers <> []
let flush t = List.iter (fun f -> f ()) t.flushers
