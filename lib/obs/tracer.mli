(** Event emitter with category filtering and pluggable sinks.

    Disabled by default so that instrumented hot paths pay one branch
    when tracing is off.  Call sites that would allocate to build an
    event should guard with {!active}:

    {[
      if Tracer.active tracer Event.Dht_lookup then
        Tracer.emit tracer (Event.make ~time ... Event.Dht_lookup)
    ]} *)

type t

val create : ?enabled:bool -> unit -> t
(** No sinks, no filter (all categories pass). *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val set_filter : t -> Event.category list option -> unit
(** [Some cats] passes only those categories; [None] passes all. *)

val filter : t -> Event.category list option

val add_sink : t -> Sink.t -> unit
(** Sinks run in registration order on every emitted event. *)

val active : t -> Event.category -> bool
(** Would an event of this category reach at least one sink? *)

val emit : t -> Event.t -> unit
(** No-op when disabled, filtered out, or sink-less. *)

val events_emitted : t -> int
(** Events that reached the sinks since creation. *)
