(** Event emitter with category filtering and pluggable sinks.

    Disabled by default so that instrumented hot paths pay one branch
    when tracing is off.  Call sites that would allocate to build an
    event should guard with {!active}:

    {[
      if Tracer.active tracer Event.Dht_lookup then
        Tracer.emit tracer (Event.make ~time ... Event.Dht_lookup)
    ]} *)

type t

val create : ?enabled:bool -> unit -> t
(** No sinks, no filter (all categories pass). *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val set_filter : t -> Event.category list option -> unit
(** [Some cats] passes only those categories; [None] passes all. *)

val filter : t -> Event.category list option

val add_sink : t -> Sink.t -> unit
(** Sinks run in registration order on every emitted event. *)

val active : t -> Event.category -> bool
(** Would an event of this category reach at least one sink? *)

val emit : t -> Event.t -> unit
(** No-op when disabled, filtered out, or sink-less. *)

val events_emitted : t -> int
(** Events that reached the sinks since creation. *)

(** {2 Spans and sampling}

    The tracer owns the run's {!Span.allocator}, so span ids are handed
    out sequentially in emission order on the run's single simulation
    thread — deterministic for a given (scenario, options, trace
    config), independent of [-j]. *)

val set_sampling : t -> int -> unit
(** Keep 1 in [every] sampled operations (queries and updates); default
    1 (trace everything).  Raises [Invalid_argument] when [every < 1]. *)

val sampling : t -> int

val sample_root : t -> Span.t option
(** Root span for the next top-level operation, or [None] when tracing
    is off (disabled or sink-less) or this operation is sampled out.
    Ticks the deterministic 1-in-N sampling counter only while tracing
    is on, so enabling tracing never perturbs an untraced run. *)

val root_span : t -> Span.t option
(** Unsampled root span (maintenance ticks, fault actions, repair
    passes); [None] only when tracing is off. *)

val child_span : t -> parent:int -> Span.t
(** Allocate a child of the span with id [parent].  Only call when a
    traced ancestor span is in hand — allocation is unconditional. *)

(** {2 Flushers}

    Channels feeding JSONL sinks register a flush action here; the
    engine's periodic snapshot hook calls {!flush} so interrupted runs
    leave usable (non-truncated) trace and metrics files. *)

val add_flusher : t -> (unit -> unit) -> unit
val has_flushers : t -> bool

val flush : t -> unit
(** Run all registered flushers in registration order. *)
