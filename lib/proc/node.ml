module Wire = Pdht_wire.Wire
module Storage = Pdht_dht.Storage
module Registry = Pdht_obs.Registry
module Export = Pdht_obs.Export
module Hashing = Pdht_util.Hashing

let eviction_code = function
  | Storage.Evict_soonest_expiry -> 0
  | Storage.Evict_lru -> 1
  | Storage.Evict_random -> 2

let eviction_of_code = function
  | 0 -> Ok Storage.Evict_soonest_expiry
  | 1 -> Ok Storage.Evict_lru
  | 2 -> Ok Storage.Evict_random
  | n -> Error (Printf.sprintf "unknown eviction code %d" n)

type shard = {
  node_id : int;
  nodes : int;
  bitkeys : Pdht_util.Bitkey.t array;
  stores : int Storage.t option array;  (* member -> store iff owned *)
}

let build_shard ~node_id ~nodes ~members ~keys ~stor ~eviction =
  (* The same key hashes and store construction as [Pdht.create], so a
     sharded run is state-for-state the in-process run, split by
     member. *)
  let bitkeys =
    Array.init keys (fun i ->
        Hashing.hash_to_key (Hashing.combine [ "key"; string_of_int i ]))
  in
  let stores =
    Array.init members (fun m ->
        if m mod nodes = node_id then
          Some (Storage.create ~eviction ~capacity:stor ())
        else None)
  in
  { node_id; nodes; bitkeys; stores }

let store shard ~peer =
  match shard.stores.(peer) with
  | Some s -> s
  | None ->
      failwith
        (Printf.sprintf "node %d: not the owner of member %d" shard.node_id peer)

let key shard ~key_index = shard.bitkeys.(key_index)

let serve ?obs_out ~node_id conn =
  let registry = Registry.create () in
  let counter name = Registry.counter registry name in
  let frames_in = counter "proc.frames_in"
  and frames_out = counter "proc.frames_out"
  and hops = counter "proc.hops"
  and casts = counter "proc.casts"
  and gets = counter "proc.gets"
  and puts = counter "proc.puts"
  and repair_puts = counter "proc.repair_puts"
  and probes = counter "proc.probes" in
  let reply msg =
    Registry.incr frames_out 1;
    Frame_io.send conn msg
  in
  reply (Wire.Hello { node_id });
  let shard =
    match Frame_io.recv conn with
    | Ok (Wire.Setup { nodes; members; keys; stor; eviction; seed = _ }) -> (
        Registry.incr frames_in 1;
        match eviction_of_code eviction with
        | Ok eviction -> build_shard ~node_id ~nodes ~members ~keys ~stor ~eviction
        | Error msg -> failwith (Printf.sprintf "node %d: %s" node_id msg))
    | Ok msg ->
        failwith
          (Format.asprintf "node %d: expected Setup, got %a" node_id Wire.pp msg)
    | Error e ->
        failwith
          (Printf.sprintf "node %d: %s" node_id (Frame_io.recv_error_to_string e))
  in
  let flush_obs () =
    match obs_out with
    | Some path ->
        Export.to_file ~node:node_id ~path (Registry.snapshot registry)
    | None -> ()
  in
  let rec loop () =
    match Frame_io.recv conn with
    | Error Frame_io.Closed ->
        (* Conductor gone without [Bye]; keep whatever telemetry we
           have rather than losing the run's worth. *)
        flush_obs ()
    | Error e ->
        failwith
          (Printf.sprintf "node %d: %s" node_id (Frame_io.recv_error_to_string e))
    | Ok msg -> (
        Registry.incr frames_in 1;
        match msg with
        | Wire.Lookup { rid; span = _; src = _; dst = _; key = _ } ->
            (* The routing decision lives with the conductor; the hop is
               materialised here so it crosses a real socket. *)
            Registry.incr hops 1;
            reply (Wire.Ack { rid; ok = true; value = 0 });
            loop ()
        | Wire.Gossip _ ->
            Registry.incr casts 1;
            loop ()
        | Wire.Insert { rid; peer; key = key_index; value; now; ttl } ->
            Registry.incr puts 1;
            Storage.put (store shard ~peer) ~key:(key shard ~key_index) ~value ~now
              ~ttl;
            reply (Wire.Ack { rid; ok = true; value = 0 });
            loop ()
        | Wire.Repair { rid; peer; key = key_index; value; now; ttl } ->
            Registry.incr repair_puts 1;
            Storage.put (store shard ~peer) ~key:(key shard ~key_index) ~value ~now
              ~ttl;
            reply (Wire.Ack { rid; ok = true; value = 0 });
            loop ()
        | Wire.Get { rid; peer; key = key_index; refresh; now; ttl } ->
            Registry.incr gets 1;
            let s = store shard ~peer in
            let k = key shard ~key_index in
            let found =
              if refresh then Storage.get_and_refresh s ~key:k ~now ~ttl
              else Storage.get s ~key:k ~now
            in
            (match found with
            | Some value -> reply (Wire.Ack { rid; ok = true; value })
            | None -> reply (Wire.Ack { rid; ok = false; value = 0 }));
            loop ()
        | Wire.Probe { rid; op; peer; key = key_index; now } ->
            Registry.incr probes 1;
            let s = store shard ~peer in
            (match op with
            | Wire.Mem ->
                let ok = Storage.mem s ~key:(key shard ~key_index) ~now in
                reply (Wire.Ack { rid; ok; value = 0 })
            | Wire.Expiry -> (
                match Storage.expiry s ~key:(key shard ~key_index) with
                | Some at -> reply (Wire.Ack_float { rid; ok = true; value = at })
                | None -> reply (Wire.Ack_float { rid; ok = false; value = 0.0 }))
            | Wire.Live_count ->
                reply
                  (Wire.Ack { rid; ok = true; value = Storage.live_count s ~now })
            | Wire.Clear ->
                reply (Wire.Ack { rid; ok = true; value = Storage.clear s }));
            loop ()
        | Wire.Snapshot { rid } ->
            let counters =
              List.filter_map
                (fun (name, value) ->
                  match value with
                  | Registry.Counter_v n -> Some (name, n)
                  | _ -> None)
                (Registry.snapshot registry)
            in
            reply (Wire.Counters { rid; node_id; counters });
            loop ()
        | Wire.Bye -> flush_obs ()
        | Wire.Hello _ | Wire.Setup _ | Wire.Ack _ | Wire.Ack_float _
        | Wire.Counters _ ->
            failwith
              (Format.asprintf "node %d: unexpected frame %a" node_id Wire.pp msg))
  in
  loop ()

let run ?obs_out ~port ~node_id () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let conn =
    try
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Frame_io.of_fd fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  Fun.protect
    ~finally:(fun () -> Frame_io.close conn)
    (fun () -> serve ?obs_out ~node_id conn)
