module Wire = Pdht_wire.Wire
module M = Pdht_proto.Rpc_machine
module System = Pdht_core.System
module Pdht = Pdht_core.Pdht
module Scenario = Pdht_work.Scenario
module Registry = Pdht_obs.Registry
module Export = Pdht_obs.Export

type config = {
  nodes : int;
  exe : string;
  obs_dir : string option;
  rpc : M.config;
}

let default_config ~nodes ~exe =
  let net = Pdht_net.Config.default in
  {
    nodes;
    exe;
    obs_dir = None;
    rpc =
      {
        M.timeout = net.Pdht_net.Config.rpc_timeout;
        retries = net.Pdht_net.Config.rpc_retries;
        backoff = net.Pdht_net.Config.backoff;
      };
  }

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Cluster.run: %s is not a directory" dir)

let node_obs_path dir k = Filename.concat dir (Printf.sprintf "node-%d.jsonl" k)

(* One conductor->worker RPC identifier space for the whole run, so a
   stale reply (from a timed-out attempt the worker answered late) can
   never be mistaken for the current call's. *)
let next_rid = ref 0

let rid_of = function
  | Wire.Ack { rid; _ } | Wire.Ack_float { rid; _ }
  | Wire.Counters { rid; _ } ->
      Some rid
  | _ -> None

let frame_kind = function
  | Wire.Hello _ -> "Hello"
  | Wire.Setup _ -> "Setup"
  | Wire.Lookup _ -> "Lookup"
  | Wire.Insert _ -> "Insert"
  | Wire.Gossip _ -> "Gossip"
  | Wire.Repair _ -> "Repair"
  | Wire.Get _ -> "Get"
  | Wire.Probe _ -> "Probe"
  | Wire.Ack _ -> "Ack"
  | Wire.Ack_float _ -> "Ack_float"
  | Wire.Snapshot _ -> "Snapshot"
  | Wire.Counters _ -> "Counters"
  | Wire.Bye -> "Bye"

let status_to_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited with status %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "was killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "was stopped by signal %d" s

let spawn config ~port k =
  let base =
    [ config.exe; "node"; "--connect"; string_of_int port;
      "--node-id"; string_of_int k ]
  in
  let argv =
    match config.obs_dir with
    | Some dir -> base @ [ "--obs-out"; node_obs_path dir k ]
    | None -> base
  in
  Unix.create_process config.exe (Array.of_list argv) Unix.stdin Unix.stdout
    Unix.stderr

let accept_deadline = 30.0

let accept_workers lsock ~nodes =
  let conns = Array.make nodes None in
  for _ = 1 to nodes do
    let deadline = Unix.gettimeofday () +. accept_deadline in
    (match Unix.select [ lsock ] [] [] accept_deadline with
    | [], _, _ -> failwith "cluster: timed out waiting for workers to connect"
    | _ -> ());
    let fd, _ = Unix.accept lsock in
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    let conn = Frame_io.of_fd fd in
    match Frame_io.recv ~deadline conn with
    | Ok (Wire.Hello { node_id })
      when node_id >= 0 && node_id < nodes && conns.(node_id) = None ->
        conns.(node_id) <- Some conn
    | Ok msg ->
        failwith (Format.asprintf "cluster: expected a fresh Hello, got %a" Wire.pp msg)
    | Error e ->
        failwith ("cluster: during handshake: " ^ Frame_io.recv_error_to_string e)
  done;
  Array.map Option.get conns

let run ?obs config scenario strategy (options : System.options) =
  if config.nodes < 1 then invalid_arg "Cluster.run: nodes must be >= 1";
  (match options.System.net with
  | Some _ ->
      invalid_arg "Cluster.run: a network model and a real transport are mutually exclusive"
  | None -> ());
  Option.iter ensure_dir config.obs_dir;
  let obs = match obs with Some o -> o | None -> Pdht_obs.Context.create () in
  let members = System.plan_active_members scenario options strategy in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock config.nodes;
  let port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  (* A write into a dead worker's socket must surface as EPIPE, not
     kill the conductor. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let pids = Array.init config.nodes (spawn config ~port) in
  let conns = ref [||] in
  let reaped = Array.make config.nodes false in
  let last_frame = Array.make config.nodes "none" in
  (* Fail fast with the worker's fate — node id, exit status, the last
     frame we sent it — instead of burning the whole RPC retry ladder
     against a dead process. *)
  let check_dead k =
    if not reaped.(k) then
      match Unix.waitpid [ Unix.WNOHANG ] pids.(k) with
      | 0, _ -> ()
      | _, status ->
          reaped.(k) <- true;
          failwith
            (Printf.sprintf "cluster: node %d %s (last frame sent: %s)" k
               (status_to_string status) last_frame.(k))
      | exception Unix.Unix_error _ -> ()
  in
  let cleanup () =
    Array.iter Frame_io.close !conns;
    Array.iteri
      (fun k pid ->
        if not reaped.(k) then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          reaped.(k) <- true
        end)
      pids
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  conns := accept_workers lsock ~nodes:config.nodes;
  Unix.close lsock;
  let conn k = !conns.(k) in
  let send_to k frame =
    last_frame.(k) <- frame_kind frame;
    try Frame_io.send (conn k) frame
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      check_dead k;
      failwith
        (Printf.sprintf "cluster: node %d dropped its connection (last frame sent: %s)"
           k last_frame.(k))
  in
  let owner m = m mod config.nodes in
  let setup =
    Wire.Setup
      {
        nodes = config.nodes;
        members;
        keys = scenario.Scenario.keys;
        stor = options.System.stor;
        eviction = Node.eviction_code options.System.eviction;
        seed = scenario.Scenario.seed;
      }
  in
  Array.iteri (fun k _ -> send_to k setup) !conns;
  let wheel = Timer_wheel.create () in
  (* Synchronous request/reply with real deadlines: each attempt arms a
     wall-clock timer from the Rpc_machine schedule; select waits are
     bounded by the wheel's earliest deadline so an expiry is noticed
     the moment it is due. *)
  let call k make_frame =
    incr next_rid;
    let rid = !next_rid in
    let frame = make_frame rid in
    let c = conn k in
    let machine = ref (M.create ~timeout:config.rpc.M.timeout
                         ~retries:config.rpc.M.retries ~backoff:config.rpc.M.backoff)
    in
    let expired = ref false in
    let feed event =
      let m, action = M.step !machine event in
      machine := m;
      action
    in
    let rec attempt () =
      send_to k frame;
      expired := false;
      let timer =
        Timer_wheel.schedule wheel
          ~at:(Unix.gettimeofday () +. M.current_timeout !machine)
          (fun () -> expired := true)
      in
      await timer
    and await timer =
      match Frame_io.recv ?deadline:(Timer_wheel.next_due wheel) c with
      | Ok reply when rid_of reply = Some rid -> (
          Timer_wheel.cancel wheel timer;
          match feed M.Reply_received with
          | M.Deliver_reply -> reply
          | _ -> assert false)
      | Ok _ ->
          (* A late answer to an attempt we already gave up on. *)
          await timer
      | Error Frame_io.Timeout -> (
          ignore (Timer_wheel.run_due wheel ~now:(Unix.gettimeofday ()));
          if not !expired then await timer
          else
            match feed M.Attempt_timeout with
            | M.Retry _ ->
                check_dead k;
                attempt ()
            | M.Give_up ->
                failwith
                  (Printf.sprintf
                     "cluster: rpc to node %d gave up after %d attempts (last \
                      frame sent: %s)"
                     k
                     (M.attempt !machine + 1)
                     last_frame.(k))
            | _ -> assert false)
      | Error Frame_io.Closed ->
          (* The socket EOF can beat the worker's exit by a moment;
             give the death probe a short grace so the failure names
             the process's fate rather than just a dead socket. *)
          let rec probe tries =
            check_dead k;
            if tries > 0 then begin
              ignore (Unix.select [] [] [] 0.01);
              probe (tries - 1)
            end
          in
          probe 20;
          failwith
            (Printf.sprintf
               "cluster: node %d closed its connection (last frame sent: %s)" k
               last_frame.(k))
      | Error (Frame_io.Wire e) ->
          failwith
            (Printf.sprintf "cluster: corrupt frame from node %d: %s" k
               (Wire.error_to_string e))
    in
    attempt ()
  in
  let call_ack ~peer make_frame =
    match call (owner peer) make_frame with
    | Wire.Ack { ok; value; _ } -> (ok, value)
    | msg -> failwith (Format.asprintf "cluster: expected Ack, got %a" Wire.pp msg)
  in
  let store : Pdht.store_ops =
    {
      get_and_refresh =
        (fun ~peer ~key_index ~now ~ttl ->
          let ok, value =
            call_ack ~peer (fun rid ->
                Wire.Get { rid; peer; key = key_index; refresh = true; now; ttl })
          in
          if ok then Some value else None);
      put =
        (fun ~peer ~key_index ~value ~now ~ttl ->
          ignore
            (call_ack ~peer (fun rid ->
                 Wire.Insert { rid; peer; key = key_index; value; now; ttl })));
      repair_put =
        (fun ~peer ~key_index ~value ~now ~ttl ->
          ignore
            (call_ack ~peer (fun rid ->
                 Wire.Repair { rid; peer; key = key_index; value; now; ttl })));
      mem =
        (fun ~peer ~key_index ~now ->
          fst
            (call_ack ~peer (fun rid ->
                 Wire.Probe { rid; op = Wire.Mem; peer; key = key_index; now })));
      get =
        (fun ~peer ~key_index ~now ->
          let ok, value =
            call_ack ~peer (fun rid ->
                Wire.Get { rid; peer; key = key_index; refresh = false; now; ttl = 0.0 })
          in
          if ok then Some value else None);
      expiry =
        (fun ~peer ~key_index ->
          match
            call (owner peer) (fun rid ->
                Wire.Probe { rid; op = Wire.Expiry; peer; key = key_index; now = 0.0 })
          with
          | Wire.Ack_float { ok; value; _ } -> if ok then Some value else None
          | msg ->
              failwith
                (Format.asprintf "cluster: expected Ack_float, got %a" Wire.pp msg));
      clear =
        (fun ~peer ->
          snd
            (call_ack ~peer (fun rid ->
                 Wire.Probe { rid; op = Wire.Clear; peer; key = -1; now = 0.0 })));
      live_count =
        (fun ~peer ~now ->
          snd
            (call_ack ~peer (fun rid ->
                 Wire.Probe { rid; op = Wire.Live_count; peer; key = -1; now })));
    }
  in
  let span_id = function Some s -> s | None -> -1 in
  let rpc ~span ~src ~dst =
    match
      call (owner dst) (fun rid ->
          Wire.Lookup { rid; span = span_id span; src; dst; key = -1 })
    with
    | Wire.Ack { ok; _ } -> ok
    | msg -> failwith (Format.asprintf "cluster: expected Ack, got %a" Wire.pp msg)
  in
  let cast ~span ~src ~dst =
    send_to (owner dst) (Wire.Gossip { span = span_id span; src; dst; key = -1 });
    true
  in
  let driver =
    { System.store; attach = (fun p -> Pdht.set_transport p ~rpc ~cast) }
  in
  let report = System.run ~obs ~driver scenario strategy options in
  (* Merge worker counters only after the report is rendered from the
     conductor's registry: the merge can never perturb the
     sim-equivalence contract. *)
  let merged = Registry.create () in
  Registry.merge_into (Pdht_obs.Context.registry obs) ~into:merged;
  for k = 0 to config.nodes - 1 do
    match call k (fun rid -> Wire.Snapshot { rid }) with
    | Wire.Counters { counters; _ } ->
        List.iter
          (fun (name, value) -> Registry.incr (Registry.counter merged name) value)
          counters
    | msg ->
        failwith (Format.asprintf "cluster: expected Counters, got %a" Wire.pp msg)
  done;
  Option.iter
    (fun dir ->
      Export.to_file ~run:scenario.Scenario.name
        ~path:(Filename.concat dir "merged.jsonl")
        (Registry.snapshot merged))
    config.obs_dir;
  Array.iteri (fun k _ -> send_to k Wire.Bye) !conns;
  Array.iteri
    (fun k pid ->
      ignore (Unix.waitpid [] pid);
      reaped.(k) <- true)
    pids;
  report
