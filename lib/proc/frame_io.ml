module Wire = Pdht_wire.Wire

type t = { fd : Unix.file_descr; mutable buf : Bytes.t; mutable len : int }

type recv_error = Timeout | Closed | Wire of Wire.error

let of_fd fd = { fd; buf = Bytes.create 4096; len = 0 }
let fd t = t.fd

let rec write_all fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes off len

let send t msg =
  let frame = Wire.encode_bytes msg in
  write_all t.fd frame 0 (Bytes.length frame)

let ensure_capacity t extra =
  let need = t.len + extra in
  if need > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let grown = Bytes.create !cap in
    Bytes.blit t.buf 0 grown 0 t.len;
    t.buf <- grown
  end

let consume t used =
  Bytes.blit t.buf used t.buf 0 (t.len - used);
  t.len <- t.len - used

let rec wait_readable t ~deadline =
  let timeout =
    match deadline with
    | None -> -1.0
    | Some d -> Float.max 0.0 (d -. Unix.gettimeofday ())
  in
  match Unix.select [ t.fd ] [] [] timeout with
  | [], _, _ -> Error Timeout
  | _ :: _, _, _ -> Ok ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable t ~deadline

let chunk = 4096

let rec fill t ~deadline =
  match wait_readable t ~deadline with
  | Error _ as e -> e
  | Ok () -> (
      ensure_capacity t chunk;
      match Unix.read t.fd t.buf t.len chunk with
      | 0 -> Error Closed
      | n ->
          t.len <- t.len + n;
          Ok ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill t ~deadline
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Error Closed)

let rec recv ?deadline t =
  match Wire.decode t.buf ~pos:0 ~len:t.len with
  | Ok (msg, used) ->
      consume t used;
      Ok msg
  | Error (Wire.Truncated _) -> (
      match fill t ~deadline with
      | Ok () -> recv ?deadline t
      | Error _ as e -> e)
  | Error e -> Error (Wire e)

let recv_error_to_string = function
  | Timeout -> "timed out waiting for a frame"
  | Closed -> "peer closed the connection"
  | Wire e -> Wire.error_to_string e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
