(** Real-time timer registry for the process driver's event loop.

    Where the simulator's engine owns virtual time, the process driver
    owns [Unix.gettimeofday]: RPC attempt deadlines from
    {!Pdht_proto.Rpc_machine} become wall-clock instants here.  The
    event loop asks {!next_due} to bound its [select] wait, then calls
    {!run_due} so every expired timer fires exactly once.

    Single-threaded by design (like everything in the driver): callbacks
    run inside {!run_due} on the caller's stack. *)

type t

val create : unit -> t

val schedule : t -> at:float -> (unit -> unit) -> int
(** Register a callback to fire once [now >= at]; returns a cancel
    handle.  Timers fire in deadline order, ties broken by creation
    order. *)

val cancel : t -> int -> unit
(** Forget a pending timer; unknown or already-fired ids are a no-op. *)

val next_due : t -> float option
(** Earliest pending deadline; [None] when the wheel is empty. *)

val run_due : t -> now:float -> int
(** Fire (and drop) every timer with [at <= now], earliest first;
    returns how many fired.  Timers scheduled by a firing callback are
    honoured within the same call when already due. *)

val pending : t -> int
