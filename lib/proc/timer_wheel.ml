type entry = { at : float; id : int; cb : unit -> unit }

(* Kept ascending by (at, id); the driver holds a handful of timers at
   a time (one per in-flight RPC attempt), so an ordered list beats a
   heap on both simplicity and constant factor. *)
type t = { mutable entries : entry list; mutable next_id : int }

let create () = { entries = []; next_id = 0 }

let schedule t ~at cb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry = { at; id; cb } in
  let rec insert = function
    | [] -> [ entry ]
    | e :: rest ->
        if e.at < at || (e.at = at && e.id < id) then e :: insert rest
        else entry :: e :: rest
  in
  t.entries <- insert t.entries;
  id

let cancel t id = t.entries <- List.filter (fun e -> e.id <> id) t.entries

let next_due t = match t.entries with [] -> None | e :: _ -> Some e.at

let run_due t ~now =
  let fired = ref 0 in
  let rec loop () =
    match t.entries with
    | e :: rest when e.at <= now ->
        t.entries <- rest;
        incr fired;
        e.cb ();
        loop ()
    | _ -> ()
  in
  loop ();
  !fired

let pending t = List.length t.entries
