(** Multi-process conductor: run a {!Pdht_core.System} scenario with
    the index state sharded across [nodes] worker processes on one box.

    The conductor keeps the whole protocol brain — workloads, routing,
    selection, accounting — and drives it through {!Pdht_core.System}'s
    driver seam: every store access and every DHT hop / broadcast edge
    becomes a {!Pdht_wire.Wire} frame to the worker owning the target
    member ([member mod nodes]).  Workers answer strictly in order and
    the loopback link is reliable, so the cluster's report is
    field-for-field the same-seed simulator report; RPC deadlines
    (timeout, retry, exponential backoff — the
    {!Pdht_proto.Rpc_machine} semantics) are enforced in wall-clock
    time via a {!Timer_wheel}, and exist to fail fast when a worker
    dies rather than to model loss. *)

type config = {
  nodes : int;            (** worker process count, >= 1 *)
  exe : string;           (** executable spawned as
                              [exe node --connect PORT --node-id K] *)
  obs_dir : string option;
      (** when set: workers write [node-K.jsonl] here and the conductor
          writes [merged.jsonl] (run registry + summed worker
          counters) *)
  rpc : Pdht_proto.Rpc_machine.config;
      (** wall-clock deadline semantics for conductor->worker calls *)
}

val default_config : nodes:int -> exe:string -> config
(** No [obs_dir]; RPC deadlines from {!Pdht_net.Config.default}
    ([rpc_timeout]/[rpc_retries]/[backoff]). *)

val run :
  ?obs:Pdht_obs.Context.t ->
  config ->
  Pdht_work.Scenario.t ->
  Pdht_core.Strategy.t ->
  Pdht_core.System.options ->
  Pdht_core.System.report
(** Spawn the workers, run the scenario through them, merge worker
    counters, shut the workers down, and return the report.
    @raise Invalid_argument when [options.net] is set (a simulated
    network model and a real transport are mutually exclusive) or
    [nodes < 1].
    @raise Failure when a worker dies, misbehaves, or an RPC exhausts
    its retry budget; spawned processes are killed before the exception
    escapes.  Worker death is detected eagerly — a [waitpid]
    ([WNOHANG]) probe runs on every broken send, closed connection and
    attempt timeout — and the message names the node id, its exit
    status and the kind of the last frame sent to it, rather than
    letting the retry ladder grind against a dead process.  [SIGPIPE]
    is ignored for the calling process so such writes surface as
    [EPIPE]. *)
