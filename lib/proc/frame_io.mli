(** Framed {!Pdht_wire.Wire} message transport over a file descriptor.

    One [t] wraps one stream socket: {!send} writes a complete encoded
    frame (handling short writes), {!recv} accumulates bytes until the
    codec yields a whole message.  The codec's {!Pdht_wire.Wire.Truncated}
    verdict is exactly the "wait for more bytes" signal; every other
    decode error is surfaced to the caller, who should drop the
    connection — a byte stream that mis-frames once never recovers.

    Blocking, single-threaded: [recv] waits in [select] (bounded by
    [deadline] when given), [send] blocks until the frame is written. *)

type t

type recv_error =
  | Timeout                        (** deadline passed with no whole frame *)
  | Closed                         (** peer closed the stream *)
  | Wire of Pdht_wire.Wire.error   (** corrupt frame; drop the connection *)

val of_fd : Unix.file_descr -> t
(** Take ownership of a connected stream socket. *)

val fd : t -> Unix.file_descr

val send : t -> Pdht_wire.Wire.msg -> unit
(** Encode and write the whole frame; retries short writes and EINTR.
    Raises [Unix.Unix_error] if the peer is gone (EPIPE/ECONNRESET) —
    the drivers treat a dead peer as fatal. *)

val recv : ?deadline:float -> t -> (Pdht_wire.Wire.msg, recv_error) result
(** Next whole message.  [deadline] is an absolute [Unix.gettimeofday]
    instant; without it the call blocks until a frame, EOF, or a codec
    error.  Bytes beyond the returned frame stay buffered for the next
    call. *)

val recv_error_to_string : recv_error -> string

val close : t -> unit
