(** Worker-process protocol: the storage half of the multi-process
    driver.

    A node owns the authoritative {!Pdht_dht.Storage} shards for every
    DHT member [m] with [m mod nodes = node_id] and serves the
    conductor's frames strictly sequentially — one request, one reply —
    so the cluster's global event order equals the conductor's issue
    order and same-seed runs stay deterministic.

    Lifecycle: connect, send [Hello], receive [Setup] (sizing), then
    answer [Get]/[Insert]/[Repair]/[Probe] store operations and
    acknowledge [Lookup] routing hops until [Bye], at which point the
    node writes its [proc.*] counter registry as node-stamped JSONL
    (when [obs_out] is given) and returns. *)

val eviction_code : Pdht_dht.Storage.eviction -> int
(** Wire encoding of the eviction policy carried in [Setup]. *)

val eviction_of_code : int -> (Pdht_dht.Storage.eviction, string) result

val serve : ?obs_out:string -> node_id:int -> Frame_io.t -> unit
(** Run the worker protocol over an established connection (sends the
    [Hello], expects [Setup] first).  Returns after [Bye] or when the
    conductor closes the stream; raises [Failure] on a protocol
    violation (corrupt frame, store op for a member this node does not
    own, [Setup] missing). *)

val run : ?obs_out:string -> port:int -> node_id:int -> unit -> unit
(** Connect to the conductor on [127.0.0.1:port] and {!serve}. *)
