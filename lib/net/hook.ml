module Rng = Pdht_util.Rng
module Obs = Pdht_obs.Context
module Registry = Pdht_obs.Registry
module Tracer = Pdht_obs.Tracer
module Event = Pdht_obs.Event

type t = {
  rng : Rng.t;
  link : Link_model.t;
  config : Config.t;
  stats : Stats.t;
  tracer : Tracer.t;
  mutable clock : float; (* virtual seconds into the current operation *)
  mutable op_start : float; (* simulated time the operation began *)
}

let create ?obs ~rng config =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let link = Link_model.create config in
  {
    rng;
    link;
    config = Link_model.config link;
    stats = Stats.create obs.Obs.registry;
    tracer = obs.Obs.tracer;
    clock = 0.;
    op_start = 0.;
  }

let config t = t.config
let stats t = t.stats

let begin_op t ~now =
  t.clock <- 0.;
  t.op_start <- now

let elapsed t = t.clock
let now t = t.op_start +. t.clock

(* Each traced network message or RPC attempt gets its own child span
   under [parent] (the enclosing lookup / wave / contact span), so the
   offline analyzer can attribute retry ladders to the query that paid
   for them.  Span allocation only happens when the event is actually
   emitted, keeping untraced runs allocation-free.  A message with no
   parent belongs to an unsampled operation and is not emitted at all:
   that is what makes --trace-sample bound trace volume. *)
let trace t ?(parent = -1) ~src ~dst ~attempt ~dropped ~detail () =
  if parent >= 0 && Tracer.active t.tracer Event.Net then begin
    let span = Pdht_obs.Span.id (Tracer.child_span t.tracer ~parent) in
    Tracer.emit t.tracer
      (Event.make ~time:(now t) ~peer:src ~key_index:dst ~hops:attempt
         ~outcome:(if dropped then Event.Dropped else Event.Completed)
         ~detail ~span ~parent Event.Net)
  end

let cast ?span:parent t ~src ~dst =
  Registry.incr t.stats.Stats.c_sent 1;
  if Link_model.drops t.link t.rng ~src ~dst ~now:(now t) then begin
    Registry.incr t.stats.Stats.c_dropped 1;
    trace t ?parent ~src ~dst ~attempt:0 ~dropped:true ~detail:"send" ();
    false
  end
  else true

(* One request/response leg: send-time drop decision, then a latency
   sample only when the leg survives (stream economy: a zero-loss
   constant-latency config draws nothing at all). *)
let leg t ~src ~dst =
  Registry.incr t.stats.Stats.c_sent 1;
  if Link_model.drops t.link t.rng ~src ~dst ~now:(now t) then begin
    Registry.incr t.stats.Stats.c_dropped 1;
    false
  end
  else begin
    t.clock <- t.clock +. Link_model.sample_latency t.link t.rng;
    true
  end

let rpc ?span:parent t ~src ~dst =
  let retries = t.config.Config.rpc_retries in
  let rec attempt k =
    if k > 0 then Registry.incr t.stats.Stats.c_retried 1;
    let before = t.clock in
    let ok = leg t ~src ~dst && leg t ~src:dst ~dst:src in
    if ok then begin
      trace t ?parent ~src ~dst ~attempt:k ~dropped:false ~detail:"rpc" ();
      true
    end
    else begin
      (* A lost leg costs the attempt's full timeout; any latency the
         surviving first leg charged is subsumed by it. *)
      t.clock <- before +. Config.timeout_for_attempt t.config ~attempt:k;
      trace t ?parent ~src ~dst ~attempt:k ~dropped:true ~detail:"rpc" ();
      if k < retries then attempt (k + 1)
      else begin
        Registry.incr t.stats.Stats.c_timed_out 1;
        trace t ?parent ~src ~dst ~attempt:k ~dropped:true ~detail:"timeout" ();
        false
      end
    end
  in
  attempt 0

let advance_rounds t n =
  if n < 0 then invalid_arg "Hook.advance_rounds: negative rounds";
  for _ = 1 to n do
    t.clock <- t.clock +. Link_model.sample_latency t.link t.rng
  done

let record_latency t =
  (* Histogram unit is milliseconds — see the note in [Stats.create]. *)
  Pdht_obs.Histogram.record t.stats.Stats.latency_hist (t.clock *. 1000.)
