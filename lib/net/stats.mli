(** Pre-resolved [net.*] instruments.

    One lookup per run instead of one registry hash probe per message:
    the transport and the query-path hook share a single [Stats.t]. *)

type t = {
  c_sent : Pdht_obs.Registry.counter;       (* net.messages_sent *)
  c_dropped : Pdht_obs.Registry.counter;    (* net.messages_dropped *)
  c_retried : Pdht_obs.Registry.counter;    (* net.messages_retried *)
  c_timed_out : Pdht_obs.Registry.counter;  (* net.messages_timed_out *)
  latency_hist : Pdht_obs.Histogram.t;      (* net.query_latency_ms *)
}

val create : Pdht_obs.Registry.t -> t
