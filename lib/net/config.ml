type latency =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Lognormal of { mu : float; sigma : float }

type partition = {
  group_a : int array;
  group_b : int array;
  from_time : float;
  until_time : float;
}

type t = {
  latency : latency;
  loss : float;
  partitions : partition list;
  rpc_timeout : float;
  rpc_retries : int;
  backoff : float;
}

let default =
  {
    latency = Constant 0.05;
    loss = 0.;
    partitions = [];
    rpc_timeout = 1.0;
    rpc_retries = 3;
    backoff = 2.0;
  }

let zero_cost = { default with latency = Constant 0.; loss = 0. }

let validate t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let latency_ok =
    match t.latency with
    | Constant s when s >= 0. && Float.is_finite s -> Ok ()
    | Constant s -> err "latency constant %g must be finite and >= 0" s
    | Uniform { lo; hi } when 0. <= lo && lo <= hi && Float.is_finite hi -> Ok ()
    | Uniform { lo; hi } -> err "latency uniform [%g, %g) must satisfy 0 <= lo <= hi" lo hi
    | Lognormal { mu; sigma } when sigma >= 0. && Float.is_finite mu && Float.is_finite sigma
      ->
        Ok ()
    | Lognormal { mu; sigma } -> err "latency lognormal (mu=%g, sigma=%g) needs sigma >= 0" mu sigma
  in
  let partition_ok p =
    if not (p.from_time <= p.until_time) then
      err "partition window [%g, %g) is reversed" p.from_time p.until_time
    else if
      Array.exists (fun x -> x < 0) p.group_a || Array.exists (fun x -> x < 0) p.group_b
    then Error "partition groups must contain non-negative peer ids"
    else Ok ()
  in
  let rec all_ok = function
    | [] -> Ok ()
    | p :: rest -> ( match partition_ok p with Ok () -> all_ok rest | Error _ as e -> e)
  in
  match latency_ok with
  | Error _ as e -> e
  | Ok () ->
      if not (0. <= t.loss && t.loss <= 1.) then err "loss %g must be in [0, 1]" t.loss
      else if not (t.rpc_timeout > 0. && Float.is_finite t.rpc_timeout) then
        err "rpc_timeout %g must be finite and positive" t.rpc_timeout
      else if t.rpc_retries < 0 then err "rpc_retries %d must be >= 0" t.rpc_retries
      else if not (t.backoff >= 1. && Float.is_finite t.backoff) then
        err "backoff %g must be finite and >= 1" t.backoff
      else ( match all_ok t.partitions with Ok () -> Ok t | Error _ as e -> e)

let attempts t = 1 + t.rpc_retries

let timeout_for_attempt t ~attempt =
  if attempt < 0 then invalid_arg "Config.timeout_for_attempt: negative attempt";
  t.rpc_timeout *. (t.backoff ** float_of_int attempt)

let latency_to_string = function
  | Constant s -> Printf.sprintf "constant:%g" s
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%g:%g" lo hi
  | Lognormal { mu; sigma } -> Printf.sprintf "lognormal:%g:%g" mu sigma

let pp_latency ppf l = Format.pp_print_string ppf (latency_to_string l)

let latency_of_string s =
  let float_of s = try Some (float_of_string (String.trim s)) with _ -> None in
  match String.split_on_char ':' s with
  | [ v ] -> (
      match float_of v with
      | Some f -> Ok (Constant f)
      | None -> Error (Printf.sprintf "latency %S: expected a number or dist:params" s))
  | [ "constant"; v ] -> (
      match float_of v with
      | Some f -> Ok (Constant f)
      | None -> Error (Printf.sprintf "latency %S: constant needs one number" s))
  | [ "uniform"; lo; hi ] -> (
      match (float_of lo, float_of hi) with
      | Some lo, Some hi -> Ok (Uniform { lo; hi })
      | _ -> Error (Printf.sprintf "latency %S: uniform needs uniform:LO:HI" s))
  | [ "lognormal"; mu; sigma ] -> (
      match (float_of mu, float_of sigma) with
      | Some mu, Some sigma -> Ok (Lognormal { mu; sigma })
      | _ -> Error (Printf.sprintf "latency %S: lognormal needs lognormal:MU:SIGMA" s))
  | _ ->
      Error
        (Printf.sprintf
           "latency %S: expected SECONDS, constant:S, uniform:LO:HI or lognormal:MU:SIGMA" s)
