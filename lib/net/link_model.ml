module Rng = Pdht_util.Rng

type compiled_partition = {
  side_a : int array; (* sorted *)
  side_b : int array; (* sorted *)
  from_time : float;
  until_time : float;
}

type t = {
  config : Config.t;
  parts : compiled_partition array;
  loss : float;
}

let sorted_copy a =
  let c = Array.copy a in
  Array.sort compare c;
  c

let create config =
  match Config.validate config with
  | Error msg -> invalid_arg ("Link_model.create: " ^ msg)
  | Ok config ->
      let parts =
        Array.of_list
          (List.map
             (fun (p : Config.partition) ->
               {
                 side_a = sorted_copy p.Config.group_a;
                 side_b = sorted_copy p.Config.group_b;
                 from_time = p.Config.from_time;
                 until_time = p.Config.until_time;
               })
             config.Config.partitions)
      in
      { config; parts; loss = config.Config.loss }

let config t = t.config

let mem_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = x

let two_pi = 2. *. Float.pi

let sample_latency t rng =
  match t.config.Config.latency with
  | Config.Constant s -> s
  | Config.Uniform { lo; hi } -> if hi > lo then lo +. Rng.float rng (hi -. lo) else lo
  | Config.Lognormal { mu; sigma } ->
      (* Box–Muller, single leg: two uniforms per sample keeps the draw
         count fixed (no cached second leg, whose lifetime would make
         the stream depend on call interleaving). *)
      let u1 = 1. -. Rng.unit_float rng (* (0, 1]: log stays finite *) in
      let u2 = Rng.unit_float rng in
      let z = sqrt (-2. *. log u1) *. cos (two_pi *. u2) in
      exp (mu +. (sigma *. z))

let partitioned t ~src ~dst ~now =
  let n = Array.length t.parts in
  let rec check i =
    if i = n then false
    else
      let p = t.parts.(i) in
      if
        p.from_time <= now && now < p.until_time
        && ((mem_sorted p.side_a src && mem_sorted p.side_b dst)
           || (mem_sorted p.side_a dst && mem_sorted p.side_b src))
      then true
      else check (i + 1)
  in
  n > 0 && check 0

let drops t rng ~src ~dst ~now =
  partitioned t ~src ~dst ~now || (t.loss > 0. && Rng.bernoulli rng ~p:t.loss)
