(** Compiled link behaviour: latency sampling and drop decisions.

    A {!Config.t} turned into the two questions the transport asks per
    message — "how long does this one take?" and "does it arrive?" —
    with the partition groups pre-sorted so the per-message check is a
    pair of binary searches, not a list scan. *)

type t

val create : Config.t -> t
(** @raise Invalid_argument when {!Config.validate} rejects the config. *)

val config : t -> Config.t

val sample_latency : t -> Pdht_util.Rng.t -> float
(** One latency draw.  [Constant] consumes no RNG state, [Uniform] one
    draw, [Lognormal] two (Box–Muller). *)

val partitioned : t -> src:int -> dst:int -> now:float -> bool
(** True when an active partition window separates [src] from [dst] at
    simulated time [now]. *)

val drops : t -> Pdht_util.Rng.t -> src:int -> dst:int -> now:float -> bool
(** The send-time fate of one message: dropped by an active partition
    (no RNG draw) or by the independent loss coin (one draw whenever
    [loss > 0]).  Zero loss consumes no RNG state, so a zero-cost
    config leaves the net stream untouched by casts. *)
