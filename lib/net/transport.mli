(** Engine-scheduled message delivery.

    The asynchronous half of the network model: [send] decides the
    message's fate immediately (loss and partition checks at send time,
    from the run's own RNG stream, so the outcome is a pure function of
    the spec) and, when the message survives, schedules the delivery
    callback on the simulation engine after a sampled latency.  Every
    message emits one [Net] trace event when the tracer listens. *)

type t

val create :
  ?obs:Pdht_obs.Context.t ->
  engine:Pdht_sim.Engine.t ->
  rng:Pdht_util.Rng.t ->
  Link_model.t ->
  t
(** [rng] should be a stream dedicated to the network (the caller
    splits it); the transport draws latency and loss coins from it in
    send order. *)

val link : t -> Link_model.t
val stats : t -> Stats.t
val engine : t -> Pdht_sim.Engine.t

val send :
  t -> ?span:int -> src:int -> dst:int -> (Pdht_sim.Engine.t -> unit) -> bool
(** Send one message from [src] to [dst]; the callback runs on the
    engine when the message arrives.  Returns false — and never runs
    the callback — when the message is dropped (loss coin or active
    partition).  Counts [net.messages_sent] always and
    [net.messages_dropped] on a drop.  [span] is the enclosing causal
    span id: the traced send event becomes its child. *)

val delay : t -> float
(** Sample one delivery latency from the link model without sending —
    the building block for callers that account for message time
    outside the engine (see {!Hook}). *)
