module Registry = Pdht_obs.Registry

type t = {
  c_sent : Registry.counter;
  c_dropped : Registry.counter;
  c_retried : Registry.counter;
  c_timed_out : Registry.counter;
  latency_hist : Pdht_obs.Histogram.t;
}

let create r =
  {
    c_sent = Registry.counter r "net.messages_sent";
    c_dropped = Registry.counter r "net.messages_dropped";
    c_retried = Registry.counter r "net.messages_retried";
    c_timed_out = Registry.counter r "net.messages_timed_out";
    (* Milliseconds, not seconds: the histogram's geometric buckets
       start at 1, so every sub-second sample would collapse into the
       single [0,1) bucket and the quantiles would degenerate to 0.5. *)
    latency_hist = Registry.histogram r "net.query_latency_ms";
  }
