module Engine = Pdht_sim.Engine
module Registry = Pdht_obs.Registry

type t = { transport : Transport.t; config : Config.t }

let create transport =
  { transport; config = Link_model.config (Transport.link transport) }

let transport t = t.transport

type call_state = { mutable settled : bool }

let call ?span t ~src ~dst ~handler ~on_reply =
  let stats = Transport.stats t.transport in
  let engine = Transport.engine t.transport in
  let state = { settled = false } in
  let rec attempt k =
    if not state.settled then begin
      if k > 0 then Registry.incr stats.Stats.c_retried 1;
      let (_ : bool) =
        Transport.send t.transport ?span ~src ~dst (fun _eng ->
            if (not state.settled) && handler () then
              let (_ : bool) =
                Transport.send t.transport ?span ~src:dst ~dst:src (fun eng ->
                    if not state.settled then begin
                      state.settled <- true;
                      on_reply ~ok:true eng
                    end)
              in
              ())
      in
      (* The caller cannot observe a send-time drop: it always waits the
         attempt's full timeout before retrying or giving up, exactly as
         a real endpoint would. *)
      Engine.schedule engine
        ~delay:(Config.timeout_for_attempt t.config ~attempt:k)
        (fun eng ->
          if not state.settled then
            if k < t.config.Config.rpc_retries then attempt (k + 1)
            else begin
              state.settled <- true;
              Registry.incr stats.Stats.c_timed_out 1;
              on_reply ~ok:false eng
            end)
    end
  in
  attempt 0
