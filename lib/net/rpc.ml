module Engine = Pdht_sim.Engine
module Machine = Pdht_proto.Rpc_machine

type t = { transport : Transport.t; config : Config.t }

let create transport =
  { transport; config = Link_model.config (Transport.link transport) }

let transport t = t.transport

(* Driver over the pure {!Pdht_proto.Rpc_machine}: the machine decides
   retry/settle, this code binds its events to the simulator — the
   attempt deadline is an engine timer and the reply is the transport's
   delivery callback.  The process driver binds the same machine to a
   real timer wheel. *)
let call ?span t ~src ~dst ~handler ~on_reply =
  let stats = Transport.stats t.transport in
  let engine = Transport.engine t.transport in
  let machine =
    ref
      (Machine.create ~timeout:t.config.Config.rpc_timeout
         ~retries:t.config.Config.rpc_retries ~backoff:t.config.Config.backoff)
  in
  let step event =
    let m, action = Machine.step !machine event in
    machine := m;
    action
  in
  let rec attempt k =
    if k > 0 then Pdht_obs.Registry.incr stats.Stats.c_retried 1;
    let (_ : bool) =
      Transport.send t.transport ?span ~src ~dst (fun _eng ->
          if (not (Machine.settled !machine)) && handler () then
            let (_ : bool) =
              Transport.send t.transport ?span ~src:dst ~dst:src (fun eng ->
                  match step Machine.Reply_received with
                  | Machine.Deliver_reply -> on_reply ~ok:true eng
                  | Machine.Ignore | Machine.Retry _ | Machine.Give_up -> ())
            in
            ())
    in
    (* The caller cannot observe a send-time drop: it always waits the
       attempt's full timeout before retrying or giving up, exactly as
       a real endpoint would. *)
    Engine.schedule engine ~delay:(Machine.current_timeout !machine) (fun eng ->
        match step Machine.Attempt_timeout with
        | Machine.Retry { attempt = k'; timeout = _ } -> attempt k'
        | Machine.Give_up ->
            Pdht_obs.Registry.incr stats.Stats.c_timed_out 1;
            on_reply ~ok:false eng
        | Machine.Ignore | Machine.Deliver_reply -> ())
  in
  attempt 0
