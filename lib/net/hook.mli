(** Delivery-cost hook for the synchronous query path.

    The PDHT query pipeline (DHT routing, replica floods, unstructured
    fallback) runs to completion inside one engine event; rewriting it
    as engine-scheduled state machines would buy nothing for a
    simulation whose queries do not overlap.  Instead, each query opens
    an {e operation} on this hook: per-hop RPCs and per-round broadcast
    latencies accumulate on a virtual clock, loss and partitions make
    individual deliveries fail (bounded retries with exponential
    backoff, then a timeout that the caller degrades from — the
    Section 5 miss path), and the final {!elapsed} is the query's
    end-to-end latency, recorded into the [net.query_latency]
    histogram.

    All randomness comes from the hook's own RNG stream, so enabling
    the network model never perturbs workload, churn or topology
    draws — the basis of the zero-cost-equivalence guarantee. *)

type t

val create : ?obs:Pdht_obs.Context.t -> rng:Pdht_util.Rng.t -> Config.t -> t
(** [rng] must be a dedicated stream (the caller splits it off the run
    seed).  @raise Invalid_argument when the config fails
    {!Config.validate}. *)

val config : t -> Config.t
val stats : t -> Stats.t

val begin_op : t -> now:float -> unit
(** Start a new timed operation at simulated time [now]: resets the
    virtual clock.  Partition windows are evaluated against
    [now + clock] as the operation progresses. *)

val elapsed : t -> float
(** Virtual seconds accumulated since {!begin_op}. *)

val now : t -> float
(** [op_start + elapsed]: the virtual completion time of whatever the
    operation just did — the timestamp traced child events carry. *)

val cast : ?span:int -> t -> src:int -> dst:int -> bool
(** One fire-and-forget message (flood / walk step semantics): counted
    as sent, subject to loss and partitions, no retries, no clock
    charge (broadcast time is per-round, see {!advance_rounds}).
    Returns false when the message is lost — the receiver never sees
    it.  [span] is the enclosing causal span id: when supplied and
    tracing is on, the traced loss event becomes its child. *)

val rpc : ?span:int -> t -> src:int -> dst:int -> bool
(** One request/response exchange (DHT hop semantics) on the virtual
    clock: each attempt sends a request and, if it arrives, a response;
    a loss on either leg costs the attempt's full timeout
    ([rpc_timeout * backoff^k]) before the next try.  Returns true with
    the round-trip added to the clock, or false — with every timeout
    charged and [net.messages_timed_out] bumped — when the retry
    budget is exhausted (caller degrades: treat the peer as
    unreachable).  [span] parents the per-attempt trace events: each
    attempt (and the final timeout) is emitted as its own child span
    of the supplied id, stamped at its virtual completion time. *)

val advance_rounds : t -> int -> unit
(** Charge [n] sequential broadcast rounds to the clock: one latency
    sample each (a flood level or walk round is a wave of parallel
    messages, so its duration is one per-hop latency, not the sum). *)

val record_latency : t -> unit
(** Record {!elapsed} into the [net.query_latency_ms] histogram (in
    milliseconds, so the log-bucketed sketch resolves sub-second
    values) — call once per query, after the operation completes. *)
