module Rng = Pdht_util.Rng
module Engine = Pdht_sim.Engine
module Obs = Pdht_obs.Context
module Registry = Pdht_obs.Registry
module Tracer = Pdht_obs.Tracer
module Event = Pdht_obs.Event

type t = {
  engine : Engine.t;
  rng : Rng.t;
  link : Link_model.t;
  stats : Stats.t;
  tracer : Tracer.t;
}

let create ?obs ~engine ~rng link =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  {
    engine;
    rng;
    link;
    stats = Stats.create obs.Obs.registry;
    tracer = obs.Obs.tracer;
  }

let link t = t.link
let stats t = t.stats
let engine t = t.engine

let trace t ?(parent = -1) ~src ~dst ~dropped () =
  if Tracer.active t.tracer Event.Net then begin
    let span =
      if parent >= 0 then Pdht_obs.Span.id (Tracer.child_span t.tracer ~parent)
      else -1
    in
    Tracer.emit t.tracer
      (Event.make ~time:(Engine.now t.engine) ~peer:src ~key_index:dst
         ~outcome:(if dropped then Event.Dropped else Event.Completed)
         ~detail:"send" ~span ~parent Event.Net)
  end

let send t ?span:parent ~src ~dst callback =
  Registry.incr t.stats.Stats.c_sent 1;
  let now = Engine.now t.engine in
  if Link_model.drops t.link t.rng ~src ~dst ~now then begin
    Registry.incr t.stats.Stats.c_dropped 1;
    trace t ?parent ~src ~dst ~dropped:true ();
    false
  end
  else begin
    let latency = Link_model.sample_latency t.link t.rng in
    trace t ?parent ~src ~dst ~dropped:false ();
    Engine.schedule t.engine ~delay:latency callback;
    true
  end

let delay t = Link_model.sample_latency t.link t.rng
