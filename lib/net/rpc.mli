(** Request/response over {!Transport} with timeout, bounded retries and
    exponential backoff.

    The asynchronous state machine (per call):

    {v
      attempt k (k = 0 .. rpc_retries):
        send request  --lost-->  wait timeout * backoff^k, retry / give up
             |
          delivered, handler says yes
             |
        send response --lost-->  (same timeout path on the caller)
             |
          delivered  -->  on_reply ~ok:true
    v}

    A late reply racing a retry is settled exactly once: whichever of
    {e reply delivered} / {e final timeout} happens first wins, the
    loser finds the call settled and does nothing.  Counters:
    [net.messages_retried] per retry attempt, [net.messages_timed_out]
    per call that exhausts its budget. *)

type t

val create : Transport.t -> t
(** Timeout, retry and backoff parameters come from the transport's
    link-model config. *)

val transport : t -> Transport.t

val call :
  ?span:int ->
  t ->
  src:int ->
  dst:int ->
  handler:(unit -> bool) ->
  on_reply:(ok:bool -> Pdht_sim.Engine.t -> unit) ->
  unit
(** Issue one RPC from [src] to [dst].  [handler] runs (on the engine,
    at request-arrival time) to decide whether [dst] answers — e.g. an
    online check.  [on_reply ~ok:true] fires at response-arrival time;
    [on_reply ~ok:false] fires when every attempt timed out, or when
    [handler] returned false on a delivered attempt and the timeout
    budget subsequently ran out (a peer that refuses to answer looks
    identical to a lost message from the caller's side).  [span]
    parents the per-attempt send trace events. *)
