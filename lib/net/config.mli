(** Network-model configuration.

    A pure description of link behaviour: how long a message takes, how
    likely it is to vanish, which peer groups cannot talk to each other,
    and how patiently an RPC caller retries.  The record is plain data —
    building one has no side effects, and the same config given to the
    same seeded run always produces the same simulation, so reports stay
    pure functions of the spec. *)

type latency =
  | Constant of float
      (** Every message takes exactly this many seconds. *)
  | Uniform of { lo : float; hi : float }
      (** Uniform in [\[lo, hi)]; one RNG draw per message. *)
  | Lognormal of { mu : float; sigma : float }
      (** [exp (mu + sigma * Z)] with [Z] standard normal — the classic
          heavy-tailed internet-delay shape; two RNG draws per message. *)

type partition = {
  group_a : int array;  (** peers on one side of the cut *)
  group_b : int array;  (** peers on the other side *)
  from_time : float;    (** cut opens at this simulated time *)
  until_time : float;   (** and heals at this time (exclusive) *)
}
(** While [from_time <= now < until_time], any message with one endpoint
    in [group_a] and the other in [group_b] is dropped (both
    directions).  Peers absent from both groups are unaffected. *)

type t = {
  latency : latency;
  loss : float;        (** independent per-message drop probability, [0,1] *)
  partitions : partition list;
  rpc_timeout : float; (** seconds an RPC caller waits for attempt 0 *)
  rpc_retries : int;   (** retries after the first attempt (0 = one shot) *)
  backoff : float;     (** timeout multiplier per retry, >= 1 *)
}

val default : t
(** 50 ms constant latency, no loss, no partitions, 1 s timeout,
    3 retries, doubling backoff. *)

val zero_cost : t
(** [default] with zero latency and zero loss: messages behave exactly
    like the instantaneous no-net semantics.  Used by the equivalence
    tests and the CI gate. *)

val validate : t -> (t, string) result
(** Checks ranges: [loss] in [0,1], latency parameters sane
    ([lo <= hi], non-negative constants, [sigma >= 0]), positive
    [rpc_timeout], non-negative [rpc_retries], [backoff >= 1], partition
    windows ordered and peer ids non-negative. *)

val attempts : t -> int
(** [1 + rpc_retries] — total delivery attempts per RPC (the first send
    plus every retry).  This is also the message cost of conclusively
    discovering a dead peer, which the live routing tables' liveness
    probes mirror ({!Pdht_dht.Kademlia.enable_live_routing}). *)

val timeout_for_attempt : t -> attempt:int -> float
(** [rpc_timeout *. backoff ^ attempt] — how long the caller waits
    before declaring attempt [attempt] (0-based) lost. *)

val latency_of_string : string -> (latency, string) result
(** Parses the CLI syntax: a bare float is [Constant]; otherwise
    ["constant:S"], ["uniform:LO:HI"], or ["lognormal:MU:SIGMA"]. *)

val latency_to_string : latency -> string
(** Inverse of {!latency_of_string} (canonical form). *)

val pp_latency : Format.formatter -> latency -> unit
