(** Declarative crash-fault schedules.

    A plan is data, not behaviour: a validated list of timed fault
    events plus the self-healing knobs, interpreted by {!Injector}
    against a running engine.  Keeping the schedule declarative makes
    experiments reproducible (the plan round-trips through
    {!to_string} / {!of_string}, so a CLI flag fully describes the
    fault load) and lets the driver validate everything before any
    simulation state exists.

    Fractions are of the whole peer population; victims are drawn at
    fire time from the injector's own RNG stream, never from the
    streams the fault-free simulation consumes. *)

type event =
  | Crash of { peer_fraction : float; at : float }
      (** Crash-stop [peer_fraction] of the population at time [at]:
          index cache and routing state are lost, membership predicates
          turn false.  No recovery. *)
  | Crash_recover of { peer_fraction : float; at : float; after : float }
      (** As {!Crash}, but the victims rejoin *empty* at [at +. after]
          (routing rebuilt by the join protocol; index entries only
          return via repair or organic re-insertion). *)
  | Flap of { peer_fraction : float; at : float; period : float; cycles : int }
      (** One victim set crashing and rejoining repeatedly: [cycles]
          crash episodes of length [period] each, starting at [at],
          ending recovered. *)
  | Correlated of { lo : float; hi : float; at : float; after : float option }
      (** Mass failure of the contiguous peer-index range
          [\[lo*n, hi*n)] — a rack / AS going dark, correlated rather
          than independent victims.  Recovers after [after] if given. *)
  | Churn of { spec : Pdht_dist.Session.spec; at : float; until : float option }
      (** A session-churn regime: from [at] (until [until], or the end
          of the run), every peer alternates independently between
          online sessions and offline gaps drawn from [spec]
          ({!Pdht_dist.Session.spec} — exponential or heavy-tailed
          legs).  Unlike {!Crash}, a churned-offline peer keeps its
          index cache and routing table and simply reappears with them
          when its downtime ends — the session model of the paper's
          Section 3.3.1, not a fail-stop. *)
  | Abort of { at : float }
      (** Deliberately abort the whole run at [at] (raises through the
          engine).  For harness testing: checks that failure context
          (time + handler label) survives to the experiment runner. *)

type repair = {
  every : float;  (** anti-entropy period, simulated seconds *)
  min_fraction : float;
      (** re-replicate an item when its live replica count falls below
          [min_fraction *. repl] *)
}

type t = {
  events : event list;
  repair : repair option;  (** [None] = organic repair only *)
  check_invariants : bool;
      (** sampled invariant sweep; fails fast with event time + label *)
  check_every : float;  (** invariant sweep period *)
}

val default : t
(** No events, no anti-entropy, no checking, [check_every = 60.]. *)

val validate : t -> (t, string) result
(** Fractions in [0, 1], times finite and non-negative, delays and
    periods positive, [cycles >= 1], rack ranges non-empty and pairwise
    disjoint (overlapping [rack:] ranges would fight over the same
    victims), churn specs valid per {!Pdht_dist.Session.validate},
    repair threshold in (0, 1]. *)

val of_string : string -> (t, string) result
(** Parse a comma-separated event list (repair / checking are separate
    flags).  Grammar, one event per item:
    - [crash:F@T] — crash fraction F at time T, no recovery;
    - [crash:F@T+D] — crash at T, rejoin empty at T+D;
    - [flap:F@T+DxN] — N crash episodes of length D starting at T;
    - [rack:LO-HI@T] and [rack:LO-HI@T+D] — correlated range failure;
    - [churn:SPEC@T] and [churn:SPEC@T+D] — session churn from T (for
      D seconds if given), where SPEC follows the
      {!Pdht_dist.Session.of_string} grammar
      ([DIST\[:up=S\]\[:down=S\]\[:sigma=X|:shape=X\]\[:on=F\]] —
      ':'-separated precisely so it nests inside the comma-separated
      plan);
    - [abort@T] — abort the run at T.
    The result is validated. *)

val to_string : t -> string
(** The events in [of_string] syntax (round-trips). *)

val first_fault_time : t -> float option
(** Earliest fault time, excluding {!Abort} events — the boundary the
    recovery-time measurement compares "before" samples against. *)
