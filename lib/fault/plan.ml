type event =
  | Crash of { peer_fraction : float; at : float }
  | Crash_recover of { peer_fraction : float; at : float; after : float }
  | Flap of { peer_fraction : float; at : float; period : float; cycles : int }
  | Correlated of { lo : float; hi : float; at : float; after : float option }
  | Churn of { spec : Pdht_dist.Session.spec; at : float; until : float option }
  | Abort of { at : float }

type repair = { every : float; min_fraction : float }

type t = {
  events : event list;
  repair : repair option;
  check_invariants : bool;
  check_every : float;
}

let default = { events = []; repair = None; check_invariants = false; check_every = 60. }

let err fmt = Format.kasprintf (fun m -> Error m) fmt

let finite_nonneg what v =
  if Float.is_finite v && v >= 0. then Ok () else err "%s %g must be finite and >= 0" what v

let fraction_ok what f =
  if Float.is_finite f && 0. <= f && f <= 1. then Ok ()
  else err "%s %g must be in [0, 1]" what f

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let validate_event = function
  | Crash { peer_fraction; at } ->
      let* () = fraction_ok "crash fraction" peer_fraction in
      finite_nonneg "crash time" at
  | Crash_recover { peer_fraction; at; after } ->
      let* () = fraction_ok "crash fraction" peer_fraction in
      let* () = finite_nonneg "crash time" at in
      if Float.is_finite after && after > 0. then Ok ()
      else err "recovery delay %g must be finite and > 0" after
  | Flap { peer_fraction; at; period; cycles } ->
      let* () = fraction_ok "flap fraction" peer_fraction in
      let* () = finite_nonneg "flap start" at in
      if not (Float.is_finite period && period > 0.) then
        err "flap period %g must be finite and > 0" period
      else if cycles < 1 then err "flap cycles %d must be >= 1" cycles
      else Ok ()
  | Correlated { lo; hi; at; after } ->
      let* () = fraction_ok "rack range low" lo in
      let* () = fraction_ok "rack range high" hi in
      if lo >= hi then err "rack range [%g, %g) is empty" lo hi
      else
        let* () = finite_nonneg "rack crash time" at in
        (match after with
        | None -> Ok ()
        | Some d when Float.is_finite d && d > 0. -> Ok ()
        | Some d -> err "rack recovery delay %g must be finite and > 0" d)
  | Churn { spec; at; until } -> (
      match Pdht_dist.Session.validate spec with
      | Error msg -> err "churn spec: %s" msg
      | Ok _ -> (
          let* () = finite_nonneg "churn start" at in
          match until with
          | None -> Ok ()
          | Some u ->
              if Float.is_finite u && u > at then Ok ()
              else err "churn end %g must be finite and after start %g" u at))
  | Abort { at } -> finite_nonneg "abort time" at

(* Two rack events naming intersecting peer-index ranges would fight
   over the same victims (the second crash of an already-crashed peer
   is a no-op, so its recovery silently resurrects the first rack's
   victims early).  Reject the ambiguity outright. *)
let rec racks_disjoint = function
  | [] -> Ok ()
  | Correlated { lo; hi; _ } :: rest -> (
      let clash =
        List.find_map
          (function
            | Correlated { lo = lo'; hi = hi'; _ } when lo < hi' && lo' < hi ->
                Some (lo', hi')
            | _ -> None)
          rest
      in
      match clash with
      | Some (lo', hi') ->
          err "rack ranges [%g, %g) and [%g, %g) overlap" lo hi lo' hi'
      | None -> racks_disjoint rest)
  | _ :: rest -> racks_disjoint rest

let validate t =
  let rec events_ok = function
    | [] -> racks_disjoint t.events
    | e :: rest -> ( match validate_event e with Ok () -> events_ok rest | Error _ as e -> e)
  in
  match events_ok t.events with
  | Error msg -> Error msg
  | Ok () -> (
      let repair_ok =
        match t.repair with
        | None -> Ok ()
        | Some { every; min_fraction } ->
            if not (Float.is_finite every && every > 0.) then
              err "repair period %g must be finite and > 0" every
            else if not (Float.is_finite min_fraction && 0. < min_fraction && min_fraction <= 1.)
            then err "repair threshold %g must be in (0, 1]" min_fraction
            else Ok ()
      in
      match repair_ok with
      | Error msg -> Error msg
      | Ok () ->
          if not (Float.is_finite t.check_every && t.check_every > 0.) then
            err "invariant-check period %g must be finite and > 0" t.check_every
          else Ok t)

let event_to_string = function
  | Crash { peer_fraction; at } -> Printf.sprintf "crash:%g@%g" peer_fraction at
  | Crash_recover { peer_fraction; at; after } ->
      Printf.sprintf "crash:%g@%g+%g" peer_fraction at after
  | Flap { peer_fraction; at; period; cycles } ->
      Printf.sprintf "flap:%g@%g+%gx%d" peer_fraction at period cycles
  | Correlated { lo; hi; at; after = None } -> Printf.sprintf "rack:%g-%g@%g" lo hi at
  | Correlated { lo; hi; at; after = Some d } -> Printf.sprintf "rack:%g-%g@%g+%g" lo hi at d
  | Churn { spec; at; until = None } ->
      Printf.sprintf "churn:%s@%g" (Pdht_dist.Session.to_string spec) at
  | Churn { spec; at; until = Some u } ->
      Printf.sprintf "churn:%s@%g+%g" (Pdht_dist.Session.to_string spec) at (u -. at)
  | Abort { at } -> Printf.sprintf "abort@%g" at

let to_string t = String.concat "," (List.map event_to_string t.events)

let float_of s = try Some (float_of_string (String.trim s)) with _ -> None
let int_of s = try Some (int_of_string (String.trim s)) with _ -> None

let parse_event spec =
  let bad why = err "fault event %S: %s" spec why in
  match String.index_opt spec '@' with
  | None -> bad "missing @TIME"
  | Some at_pos -> (
      let head = String.sub spec 0 at_pos in
      let timing = String.sub spec (at_pos + 1) (String.length spec - at_pos - 1) in
      let time_and_delay =
        match String.split_on_char '+' timing with
        | [ t ] -> (
            match float_of t with Some t -> Ok (t, None) | None -> Error "bad time")
        | [ t; d ] -> (
            match float_of t with
            | Some t -> Ok (t, Some d) (* delay kept raw: flap packs DxN in it *)
            | None -> Error "bad time")
        | _ -> Error "too many +"
      in
      match time_and_delay with
      | Error why -> bad why
      | Ok (at, delay) -> (
          match String.split_on_char ':' head with
          | [ "abort" ] | [ "abort"; "" ] ->
              if delay = None then Ok (Abort { at }) else bad "abort takes no +DELAY"
          | [ "crash"; f ] -> (
              match (float_of f, delay) with
              | Some peer_fraction, None -> Ok (Crash { peer_fraction; at })
              | Some peer_fraction, Some d -> (
                  match float_of d with
                  | Some after -> Ok (Crash_recover { peer_fraction; at; after })
                  | None -> bad "bad recovery delay")
              | None, _ -> bad "expected crash:FRACTION@TIME[+DELAY]")
          | [ "flap"; f ] -> (
              match (float_of f, delay) with
              | Some peer_fraction, Some d -> (
                  match String.split_on_char 'x' d with
                  | [ period; cycles ] -> (
                      match (float_of period, int_of cycles) with
                      | Some period, Some cycles ->
                          Ok (Flap { peer_fraction; at; period; cycles })
                      | _ -> bad "expected flap:FRACTION@TIME+PERIODxCYCLES")
                  | _ -> bad "expected flap:FRACTION@TIME+PERIODxCYCLES")
              | _ -> bad "expected flap:FRACTION@TIME+PERIODxCYCLES")
          | "churn" :: spec_fields -> (
              (* The session spec is itself ':'-separated (its grammar
                 avoids commas precisely so it can ride inside a plan
                 event); re-join what the head split took apart. *)
              match Pdht_dist.Session.of_string (String.concat ":" spec_fields) with
              | Error msg -> bad msg
              | Ok spec -> (
                  match delay with
                  | None -> Ok (Churn { spec; at; until = None })
                  | Some d -> (
                      match float_of d with
                      | Some d -> Ok (Churn { spec; at; until = Some (at +. d) })
                      | None -> bad "bad churn duration")))
          | [ "rack"; range ] -> (
              match String.split_on_char '-' range with
              | [ lo; hi ] -> (
                  match (float_of lo, float_of hi) with
                  | Some lo, Some hi -> (
                      match delay with
                      | None -> Ok (Correlated { lo; hi; at; after = None })
                      | Some d -> (
                          match float_of d with
                          | Some d -> Ok (Correlated { lo; hi; at; after = Some d })
                          | None -> bad "bad recovery delay"))
                  | _ -> bad "expected rack:LO-HI@TIME[+DELAY]")
              | _ -> bad "expected rack:LO-HI@TIME[+DELAY]")
          | _ -> bad "unknown kind (crash / flap / rack / churn / abort)"))

let of_string s =
  let specs =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if specs = [] then err "fault plan %S: no events" s
  else
    let rec go acc = function
      | [] -> (
          let plan = { default with events = List.rev acc } in
          match validate plan with Ok _ -> Ok plan | Error msg -> Error msg)
      | spec :: rest -> (
          match parse_event spec with Ok e -> go (e :: acc) rest | Error msg -> Error msg)
    in
    go [] specs

let first_fault_time t =
  List.fold_left
    (fun acc e ->
      let time =
        match e with
        | Crash { at; _ } | Crash_recover { at; _ } | Flap { at; _ } | Correlated { at; _ }
        | Churn { at; _ } ->
            Some at
        | Abort _ -> None
      in
      match (acc, time) with
      | None, t -> t
      | Some a, Some b -> Some (Float.min a b)
      | (Some _ as a), None -> a)
    None t.events
