module Rng = Pdht_util.Rng
module Sampling = Pdht_util.Sampling
module Engine = Pdht_sim.Engine
module Tracer = Pdht_obs.Tracer
module Event = Pdht_obs.Event
module Registry = Pdht_obs.Registry

type actions = {
  crash : peer:int -> now:float -> unit;
  recover : peer:int -> now:float -> unit;
  repair : span:int option -> now:float -> unit;
  check : now:float -> unit;
}

type counters = {
  crashes : Registry.counter;
  recoveries : Registry.counter;
  repair_passes : Registry.counter;
  crashed_gauge : Registry.gauge;
}

type t = {
  plan : Plan.t;
  rng : Rng.t;
  peers : int;
  crashed : bool array;
  mutable crashed_count : int;
  tracer : Tracer.t option;
  counters : counters option;
}

let create ?tracer ?registry ~rng ~peers plan =
  if peers < 1 then invalid_arg "Injector.create: need >= 1 peer";
  let plan =
    match Plan.validate plan with
    | Ok p -> p
    | Error msg -> invalid_arg ("Injector.create: " ^ msg)
  in
  let counters =
    Option.map
      (fun reg ->
        {
          crashes = Registry.counter reg "fault.crashes";
          recoveries = Registry.counter reg "fault.recoveries";
          repair_passes = Registry.counter reg "fault.repair_passes";
          crashed_gauge = Registry.gauge reg "fault.crashed_count";
        })
      registry
  in
  { plan; rng; peers; crashed = Array.make peers false; crashed_count = 0; tracer; counters }

let crashed t peer = t.crashed.(peer)
let crashed_count t = t.crashed_count
let first_fault_time t = Plan.first_fault_time t.plan

(* Every fault action is a causal root of its own: crash and recover
   events carry unsampled root spans, and a repair pass additionally
   hands its root span to [actions.repair] so the repair work's
   Maintenance events (and their network children) parent under it. *)
let trace t ~now ~peer ~detail =
  match t.tracer with
  | Some tr when Tracer.active tr Event.Fault ->
      let span =
        match Tracer.root_span tr with
        | Some s -> Pdht_obs.Span.id s
        | None -> -1
      in
      Tracer.emit tr (Event.make ~time:now ~peer ~detail ~span Event.Fault)
  | _ -> ()

(* State flips before the action runs, so every predicate the action
   consults (membership, online, storage guards) already sees the
   post-transition world. *)
let apply_crash t actions ~now peer =
  if not t.crashed.(peer) then begin
    t.crashed.(peer) <- true;
    t.crashed_count <- t.crashed_count + 1;
    (match t.counters with
    | Some c ->
        Registry.incr c.crashes 1;
        Registry.set_gauge c.crashed_gauge (float_of_int t.crashed_count)
    | None -> ());
    trace t ~now ~peer ~detail:"crash";
    actions.crash ~peer ~now
  end

let apply_recover t actions ~now peer =
  if t.crashed.(peer) then begin
    t.crashed.(peer) <- false;
    t.crashed_count <- t.crashed_count - 1;
    (match t.counters with
    | Some c ->
        Registry.incr c.recoveries 1;
        Registry.set_gauge c.crashed_gauge (float_of_int t.crashed_count)
    | None -> ());
    trace t ~now ~peer ~detail:"recover";
    actions.recover ~peer ~now
  end

(* Victims are drawn at fire time among the currently alive peers, so
   overlapping events compose (a second wave hits survivors of the
   first).  All randomness comes from the injector's own RNG stream. *)
let sample_victims t ~fraction =
  let alive = Array.make (t.peers - t.crashed_count) 0 in
  let j = ref 0 in
  for p = 0 to t.peers - 1 do
    if not t.crashed.(p) then begin
      alive.(!j) <- p;
      incr j
    end
  done;
  let want = int_of_float (Float.round (fraction *. float_of_int t.peers)) in
  let k = min want (Array.length alive) in
  let idx = Sampling.sample_without_replacement t.rng ~k ~n:(Array.length alive) in
  Array.map (fun i -> alive.(i)) idx

let crash_wave t actions ~now ~fraction =
  let victims = sample_victims t ~fraction in
  Array.iter (apply_crash t actions ~now) victims;
  victims

let attach t engine actions =
  List.iter
    (fun event ->
      match event with
      | Plan.Crash { peer_fraction; at } ->
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:crash" (fun e ->
                 ignore (crash_wave t actions ~now:(Engine.now e) ~fraction:peer_fraction)))
      | Plan.Crash_recover { peer_fraction; at; after } ->
          let victims = ref [||] in
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:crash" (fun e ->
                 victims := crash_wave t actions ~now:(Engine.now e) ~fraction:peer_fraction));
          Engine.schedule_at engine ~time:(at +. after)
            (Engine.labelled "fault:recover" (fun e ->
                 Array.iter (apply_recover t actions ~now:(Engine.now e)) !victims))
      | Plan.Flap { peer_fraction; at; period; cycles } ->
          (* One victim set, sampled at the first crash, crashing and
             rejoining [cycles] times; episode [k] is down during
             [at + 2k*period, at + (2k+1)*period). *)
          let victims = ref None in
          for k = 0 to cycles - 1 do
            let down_at = at +. (float_of_int (2 * k) *. period) in
            let up_at = at +. (float_of_int ((2 * k) + 1) *. period) in
            Engine.schedule_at engine ~time:down_at
              (Engine.labelled "fault:flap" (fun e ->
                   let vs =
                     match !victims with
                     | Some vs -> vs
                     | None ->
                         let vs = sample_victims t ~fraction:peer_fraction in
                         victims := Some vs;
                         vs
                   in
                   Array.iter (apply_crash t actions ~now:(Engine.now e)) vs));
            Engine.schedule_at engine ~time:up_at
              (Engine.labelled "fault:flap" (fun e ->
                   match !victims with
                   | Some vs -> Array.iter (apply_recover t actions ~now:(Engine.now e)) vs
                   | None -> ()))
          done
      | Plan.Correlated { lo; hi; at; after } ->
          let first = int_of_float (Float.of_int t.peers *. lo) in
          let limit = int_of_float (Float.of_int t.peers *. hi) in
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:crash" (fun e ->
                 for p = first to limit - 1 do
                   apply_crash t actions ~now:(Engine.now e) p
                 done));
          (match after with
          | None -> ()
          | Some d ->
              Engine.schedule_at engine ~time:(at +. d)
                (Engine.labelled "fault:recover" (fun e ->
                     for p = first to limit - 1 do
                       apply_recover t actions ~now:(Engine.now e) p
                     done)))
      | Plan.Abort { at } ->
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:abort" (fun _ ->
                 failwith "deliberate abort scheduled by the fault plan")))
    t.plan.Plan.events;
  (match t.plan.Plan.repair with
  | None -> ()
  | Some { Plan.every; _ } ->
      Engine.schedule_periodic engine ~first:every ~every
        (Engine.labelled "fault:repair" (fun e ->
             (match t.counters with
             | Some c -> Registry.incr c.repair_passes 1
             | None -> ());
             let now = Engine.now e in
             let span =
               match t.tracer with
               | Some tr when Tracer.active tr Event.Fault -> (
                   match Tracer.root_span tr with
                   | Some s ->
                       let id = Pdht_obs.Span.id s in
                       Tracer.emit tr
                         (Event.make ~time:now ~detail:"repair" ~span:id
                            Event.Fault);
                       Some id
                   | None -> None)
               | _ -> None
             in
             actions.repair ~span ~now)));
  if t.plan.Plan.check_invariants then
    Engine.schedule_periodic engine ~first:t.plan.Plan.check_every
      ~every:t.plan.Plan.check_every
      (Engine.labelled "fault:check" (fun e -> actions.check ~now:(Engine.now e)))
