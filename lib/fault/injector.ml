module Rng = Pdht_util.Rng
module Sampling = Pdht_util.Sampling
module Engine = Pdht_sim.Engine
module Tracer = Pdht_obs.Tracer
module Event = Pdht_obs.Event
module Registry = Pdht_obs.Registry

type actions = {
  crash : peer:int -> now:float -> unit;
  recover : peer:int -> now:float -> unit;
  repair : span:int option -> now:float -> unit;
  check : now:float -> unit;
}

type counters = {
  crashes : Registry.counter;
  recoveries : Registry.counter;
  repair_passes : Registry.counter;
  crashed_gauge : Registry.gauge;
}

type churn_counters = {
  churn_transitions : Registry.counter;
  churned_gauge : Registry.gauge;
}

type t = {
  plan : Plan.t;
  rng : Rng.t;
  peers : int;
  crashed : bool array;
  mutable crashed_count : int;
  (* Session churn is a separate axis from crash-stop: a churned-offline
     peer keeps its storage and routing table, so it never goes through
     [actions] — it is only invisible to the online predicate until its
     downtime ends. *)
  churned : bool array;
  mutable churned_count : int;
  tracer : Tracer.t option;
  counters : counters option;
  registry : Registry.t option;
  (* Registered lazily, on the first churn transition, so churn-free
     fault runs keep their historical telemetry byte-for-byte. *)
  mutable churn_counters : churn_counters option;
}

let create ?tracer ?registry ~rng ~peers plan =
  if peers < 1 then invalid_arg "Injector.create: need >= 1 peer";
  let plan =
    match Plan.validate plan with
    | Ok p -> p
    | Error msg -> invalid_arg ("Injector.create: " ^ msg)
  in
  let counters =
    Option.map
      (fun reg ->
        {
          crashes = Registry.counter reg "fault.crashes";
          recoveries = Registry.counter reg "fault.recoveries";
          repair_passes = Registry.counter reg "fault.repair_passes";
          crashed_gauge = Registry.gauge reg "fault.crashed_count";
        })
      registry
  in
  { plan; rng; peers; crashed = Array.make peers false; crashed_count = 0;
    churned = Array.make peers false; churned_count = 0; tracer; counters;
    registry; churn_counters = None }

let crashed t peer = t.crashed.(peer)
let crashed_count t = t.crashed_count
let plan_offline t peer = t.churned.(peer)
let churned_count t = t.churned_count
let first_fault_time t = Plan.first_fault_time t.plan

(* Every fault action is a causal root of its own: crash and recover
   events carry unsampled root spans, and a repair pass additionally
   hands its root span to [actions.repair] so the repair work's
   Maintenance events (and their network children) parent under it. *)
let trace t ~now ~peer ~detail =
  match t.tracer with
  | Some tr when Tracer.active tr Event.Fault ->
      let span =
        match Tracer.root_span tr with
        | Some s -> Pdht_obs.Span.id s
        | None -> -1
      in
      Tracer.emit tr (Event.make ~time:now ~peer ~detail ~span Event.Fault)
  | _ -> ()

(* State flips before the action runs, so every predicate the action
   consults (membership, online, storage guards) already sees the
   post-transition world. *)
let apply_crash t actions ~now peer =
  if not t.crashed.(peer) then begin
    t.crashed.(peer) <- true;
    t.crashed_count <- t.crashed_count + 1;
    (match t.counters with
    | Some c ->
        Registry.incr c.crashes 1;
        Registry.set_gauge c.crashed_gauge (float_of_int t.crashed_count)
    | None -> ());
    trace t ~now ~peer ~detail:"crash";
    actions.crash ~peer ~now
  end

let apply_recover t actions ~now peer =
  if t.crashed.(peer) then begin
    t.crashed.(peer) <- false;
    t.crashed_count <- t.crashed_count - 1;
    (match t.counters with
    | Some c ->
        Registry.incr c.recoveries 1;
        Registry.set_gauge c.crashed_gauge (float_of_int t.crashed_count)
    | None -> ());
    trace t ~now ~peer ~detail:"recover";
    actions.recover ~peer ~now
  end

let churn_counters t =
  match t.churn_counters with
  | Some _ as c -> c
  | None -> (
      match t.registry with
      | None -> None
      | Some reg ->
          let c =
            {
              churn_transitions = Registry.counter reg "fault.churn_transitions";
              churned_gauge = Registry.gauge reg "fault.churned_count";
            }
          in
          t.churn_counters <- Some c;
          Some c)

let set_churned t ~now peer offline =
  if t.churned.(peer) <> offline then begin
    t.churned.(peer) <- offline;
    t.churned_count <- t.churned_count + (if offline then 1 else -1);
    (match churn_counters t with
    | Some c ->
        Registry.incr c.churn_transitions 1;
        Registry.set_gauge c.churned_gauge (float_of_int t.churned_count)
    | None -> ());
    trace t ~now ~peer ~detail:(if offline then "churn-offline" else "churn-online")
  end

(* Victims are drawn at fire time among the currently alive peers, so
   overlapping events compose (a second wave hits survivors of the
   first).  All randomness comes from the injector's own RNG stream. *)
let sample_victims t ~fraction =
  let alive = Array.make (t.peers - t.crashed_count) 0 in
  let j = ref 0 in
  for p = 0 to t.peers - 1 do
    if not t.crashed.(p) then begin
      alive.(!j) <- p;
      incr j
    end
  done;
  let want = int_of_float (Float.round (fraction *. float_of_int t.peers)) in
  let k = min want (Array.length alive) in
  let idx = Sampling.sample_without_replacement t.rng ~k ~n:(Array.length alive) in
  Array.map (fun i -> alive.(i)) idx

let crash_wave t actions ~now ~fraction =
  let victims = sample_victims t ~fraction in
  Array.iter (apply_crash t actions ~now) victims;
  victims

let attach t engine actions =
  List.iter
    (fun event ->
      match event with
      | Plan.Crash { peer_fraction; at } ->
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:crash" (fun e ->
                 ignore (crash_wave t actions ~now:(Engine.now e) ~fraction:peer_fraction)))
      | Plan.Crash_recover { peer_fraction; at; after } ->
          let victims = ref [||] in
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:crash" (fun e ->
                 victims := crash_wave t actions ~now:(Engine.now e) ~fraction:peer_fraction));
          Engine.schedule_at engine ~time:(at +. after)
            (Engine.labelled "fault:recover" (fun e ->
                 Array.iter (apply_recover t actions ~now:(Engine.now e)) !victims))
      | Plan.Flap { peer_fraction; at; period; cycles } ->
          (* One victim set, sampled at the first crash, crashing and
             rejoining [cycles] times; episode [k] is down during
             [at + 2k*period, at + (2k+1)*period). *)
          let victims = ref None in
          for k = 0 to cycles - 1 do
            let down_at = at +. (float_of_int (2 * k) *. period) in
            let up_at = at +. (float_of_int ((2 * k) + 1) *. period) in
            Engine.schedule_at engine ~time:down_at
              (Engine.labelled "fault:flap" (fun e ->
                   let vs =
                     match !victims with
                     | Some vs -> vs
                     | None ->
                         let vs = sample_victims t ~fraction:peer_fraction in
                         victims := Some vs;
                         vs
                   in
                   Array.iter (apply_crash t actions ~now:(Engine.now e)) vs));
            Engine.schedule_at engine ~time:up_at
              (Engine.labelled "fault:flap" (fun e ->
                   match !victims with
                   | Some vs -> Array.iter (apply_recover t actions ~now:(Engine.now e)) vs
                   | None -> ()))
          done
      | Plan.Correlated { lo; hi; at; after } ->
          let first = int_of_float (Float.of_int t.peers *. lo) in
          let limit = int_of_float (Float.of_int t.peers *. hi) in
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:crash" (fun e ->
                 for p = first to limit - 1 do
                   apply_crash t actions ~now:(Engine.now e) p
                 done));
          (match after with
          | None -> ()
          | Some d ->
              Engine.schedule_at engine ~time:(at +. d)
                (Engine.labelled "fault:recover" (fun e ->
                     for p = first to limit - 1 do
                       apply_recover t actions ~now:(Engine.now e) p
                     done)))
      | Plan.Churn { spec; at; until } ->
          (* All session draws come from the injector's RNG at fire
             time, so plans without a churn clause consume exactly the
             draws they always did.  Toggles self-reschedule; a toggle
             that would fire at or past [until] becomes a no-op (the
             regime's closing sweep has already forced everyone back
             online). *)
          let module S = Pdht_dist.Session in
          let regime_live now =
            match until with None -> true | Some u -> now < u
          in
          let draw_duration peer =
            if t.churned.(peer) then S.draw t.rng spec.S.down ~mean:spec.S.mean_downtime
            else S.draw t.rng spec.S.up ~mean:spec.S.mean_uptime
          in
          let rec schedule_toggle peer delay =
            Engine.schedule engine ~delay
              (Engine.labelled "fault:churn" (fun e ->
                   let now = Engine.now e in
                   if regime_live now then begin
                     set_churned t ~now peer (not t.churned.(peer));
                     schedule_toggle peer (draw_duration peer)
                   end))
          in
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:churn" (fun e ->
                 let now = Engine.now e in
                 for p = 0 to t.peers - 1 do
                   if not (Rng.bernoulli t.rng ~p:spec.S.initially_online_fraction) then
                     set_churned t ~now p true;
                   schedule_toggle p (draw_duration p)
                 done));
          (match until with
          | None -> ()
          | Some u ->
              Engine.schedule_at engine ~time:u
                (Engine.labelled "fault:churn" (fun e ->
                     let now = Engine.now e in
                     for p = 0 to t.peers - 1 do
                       if t.churned.(p) then set_churned t ~now p false
                     done)))
      | Plan.Abort { at } ->
          Engine.schedule_at engine ~time:at
            (Engine.labelled "fault:abort" (fun _ ->
                 failwith "deliberate abort scheduled by the fault plan")))
    t.plan.Plan.events;
  (match t.plan.Plan.repair with
  | None -> ()
  | Some { Plan.every; _ } ->
      Engine.schedule_periodic engine ~first:every ~every
        (Engine.labelled "fault:repair" (fun e ->
             (match t.counters with
             | Some c -> Registry.incr c.repair_passes 1
             | None -> ());
             let now = Engine.now e in
             let span =
               match t.tracer with
               | Some tr when Tracer.active tr Event.Fault -> (
                   match Tracer.root_span tr with
                   | Some s ->
                       let id = Pdht_obs.Span.id s in
                       Tracer.emit tr
                         (Event.make ~time:now ~detail:"repair" ~span:id
                            Event.Fault);
                       Some id
                   | None -> None)
               | _ -> None
             in
             actions.repair ~span ~now)));
  if t.plan.Plan.check_invariants then
    Engine.schedule_periodic engine ~first:t.plan.Plan.check_every
      ~every:t.plan.Plan.check_every
      (Engine.labelled "fault:check" (fun e -> actions.check ~now:(Engine.now e)))
