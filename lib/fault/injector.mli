(** Drives a {!Plan} against a running simulation.

    The injector owns the fault-side state (who is crashed right now)
    and a dedicated RNG stream for victim sampling; the simulation
    supplies the *consequences* as an {!actions} record, so this module
    stays ignorant of storage, replication and DHT internals and the
    fault library never depends on the core.

    Determinism contract: the injector draws only from the RNG handed
    to {!create}.  A system that splits that stream off its root seed
    conditionally (only when a fault plan is present) keeps fault-free
    runs bit-identical to builds without the fault subsystem at all. *)

type actions = {
  crash : peer:int -> now:float -> unit;
      (** Make the crash-stop consequences real: clear the victim's
          index cache, drop it from replica membership, forget its
          routing state.  Called once per transition (already-crashed
          victims are skipped). *)
  recover : peer:int -> now:float -> unit;
      (** Rejoin-empty: rebuild routing via the join protocol, rejoin
          membership.  Called once per transition. *)
  repair : span:int option -> now:float -> unit;
      (** One anti-entropy pass (only scheduled when the plan enables
          repair).  [span] is the pass's causal root span id when
          tracing is on ([None] otherwise): the pass's own trace
          events should parent under it. *)
  check : now:float -> unit;
      (** One sampled invariant sweep; expected to raise on violation
          (only scheduled when the plan enables checking). *)
}

type t

val create :
  ?tracer:Pdht_obs.Tracer.t ->
  ?registry:Pdht_obs.Registry.t ->
  rng:Pdht_util.Rng.t ->
  peers:int ->
  Plan.t ->
  t
(** The plan is re-validated ([Invalid_argument] on a bad one).  With a
    [registry], the injector maintains counters [fault.crashes],
    [fault.recoveries], [fault.repair_passes] and gauge
    [fault.crashed_count] — plus, lazily on the first churn transition
    (so churn-free runs keep historical telemetry unchanged), counter
    [fault.churn_transitions] and gauge [fault.churned_count]; with a
    [tracer], each transition emits a [Fault] event ([detail] = "crash"
    / "recover" / "repair" / "churn-offline" / "churn-online") carrying
    an unsampled root span. *)

val attach : t -> Pdht_sim.Engine.t -> actions -> unit
(** Schedule every plan event on the engine (call once, before the
    run).  Fractional events sample victims at fire time among the
    currently alive peers; correlated events hit the contiguous index
    range.  All handlers are labelled ["fault:*"], so a failure escapes
    as {!Pdht_sim.Engine.Handler_failed} carrying the simulated time
    and the fault stage. *)

val crashed : t -> int -> bool
(** Is the peer currently crashed?  Compose this into the system's
    online predicate. *)

val crashed_count : t -> int

val plan_offline : t -> int -> bool
(** Is the peer currently in a churned-offline session
    ({!Plan.event.Churn} regime)?  Unlike {!crashed}, a plan-offline
    peer keeps its index cache and routing table — it is merely
    unreachable until its downtime ends.  Compose this into the
    system's online predicate alongside {!crashed}. *)

val churned_count : t -> int

val first_fault_time : t -> float option
(** See {!Plan.first_fault_time}. *)
