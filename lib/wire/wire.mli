(** Binary wire codec for the multi-process driver.

    Every message travels as one length-prefixed frame:

    {v
      +----------------+---------+------+------------------+
      | payload length | version | kind | body (per kind)  |
      |   4 bytes BE   | 1 byte  | 1 B  | length - 2 bytes |
      +----------------+---------+------+------------------+
    v}

    The payload length covers everything after the 4-byte prefix.
    Integers are 8-byte big-endian two's complement, floats 8-byte
    big-endian IEEE-754 bit patterns, booleans one byte (0/1), strings
    and lists a 4-byte big-endian count followed by the items.

    Decoding is total: any byte sequence yields either a message or a
    structured {!error} — never an exception.  Truncation is
    distinguished from corruption so a stream reader knows whether to
    wait for more bytes ({!Truncated}) or drop the connection
    (everything else). *)

(** Read-only store probes that return a single scalar. *)
type probe_op =
  | Mem         (** is the key live in the store? *)
  | Expiry      (** current expiration instant of a key *)
  | Live_count  (** non-expired entries held by a member *)
  | Clear       (** crash consequence: drop every entry, return count *)

type msg =
  | Hello of { node_id : int }
      (** worker -> conductor: first frame after connecting *)
  | Setup of {
      nodes : int;       (** worker process count *)
      members : int;     (** DHT members (store array size) *)
      keys : int;        (** distinct keys; workers rebuild the same
                             key hashes from this count *)
      stor : int;        (** per-member store capacity *)
      eviction : int;    (** store eviction policy code *)
      seed : int;        (** run seed, for logging/sanity only *)
    }  (** conductor -> worker: sizing for the worker's shard *)
  | Lookup of { rid : int; span : int; src : int; dst : int; key : int }
      (** one DHT routing hop, delivered to the owner of [dst];
          answered by {!Ack} *)
  | Insert of { rid : int; peer : int; key : int; value : int; now : float; ttl : float }
      (** index insertion / update write into [peer]'s store *)
  | Gossip of { span : int; src : int; dst : int; key : int }
      (** one broadcast/cast edge; one-way, never acknowledged *)
  | Repair of { rid : int; peer : int; key : int; value : int; now : float; ttl : float }
      (** anti-entropy copy: like {!Insert} but carrying the remaining
          (not renewed) TTL *)
  | Get of { rid : int; peer : int; key : int; refresh : bool; now : float; ttl : float }
      (** store read; [refresh] resets the expiry to [now +. ttl]
          (the paper's query-hit behaviour) *)
  | Probe of { rid : int; op : probe_op; peer : int; key : int; now : float }
  | Ack of { rid : int; ok : bool; value : int }
      (** generic RPC acknowledgement; [value]'s meaning depends on the
          request ([ok = false] = negative result, e.g. a store miss) *)
  | Ack_float of { rid : int; ok : bool; value : float }
      (** acknowledgement carrying a float (e.g. {!Expiry}) *)
  | Snapshot of { rid : int }
      (** conductor -> worker: request the worker's registry counters *)
  | Counters of { rid : int; node_id : int; counters : (string * int) list }
      (** worker -> conductor: registry counter snapshot for merging *)
  | Bye  (** conductor -> worker: flush observability output and exit *)

type error =
  | Truncated of { need : int; have : int }
      (** not a whole frame yet; [need] is the total bytes required
          (known once the 4-byte prefix is readable, else 4) *)
  | Frame_too_large of { length : int; limit : int }
  | Bad_version of int
  | Unknown_kind of int
  | Malformed of string
      (** complete frame whose body does not parse (short body,
          trailing bytes, bad bool/probe code, oversized list...) *)

val version : int
(** Current envelope version (1). *)

val max_payload : int
(** Upper bound on the payload length a decoder accepts; anything
    larger is {!Frame_too_large} (garbage length prefixes otherwise
    turn into gigabyte waits). *)

val encode : Buffer.t -> msg -> unit
(** Append one complete frame. *)

val encode_bytes : msg -> Bytes.t
(** One complete frame as fresh bytes. *)

val decode : Bytes.t -> pos:int -> len:int -> (msg * int, error) result
(** [decode buf ~pos ~len] parses one frame from [buf.[pos .. pos+len)].
    On success returns the message and the total bytes consumed
    (prefix included).  Never raises on any input; out-of-range
    [pos]/[len] are reported as {!Malformed}. *)

val equal : msg -> msg -> bool
val pp : Format.formatter -> msg -> unit
val error_to_string : error -> string
