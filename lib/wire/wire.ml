type probe_op = Mem | Expiry | Live_count | Clear

type msg =
  | Hello of { node_id : int }
  | Setup of {
      nodes : int;
      members : int;
      keys : int;
      stor : int;
      eviction : int;
      seed : int;
    }
  | Lookup of { rid : int; span : int; src : int; dst : int; key : int }
  | Insert of { rid : int; peer : int; key : int; value : int; now : float; ttl : float }
  | Gossip of { span : int; src : int; dst : int; key : int }
  | Repair of { rid : int; peer : int; key : int; value : int; now : float; ttl : float }
  | Get of { rid : int; peer : int; key : int; refresh : bool; now : float; ttl : float }
  | Probe of { rid : int; op : probe_op; peer : int; key : int; now : float }
  | Ack of { rid : int; ok : bool; value : int }
  | Ack_float of { rid : int; ok : bool; value : float }
  | Snapshot of { rid : int }
  | Counters of { rid : int; node_id : int; counters : (string * int) list }
  | Bye

type error =
  | Truncated of { need : int; have : int }
  | Frame_too_large of { length : int; limit : int }
  | Bad_version of int
  | Unknown_kind of int
  | Malformed of string

let version = 1

(* Counter snapshots dominate payload size: a few hundred instrument
   names at ~40 bytes each.  1 MiB leaves two orders of magnitude of
   headroom while bounding what a corrupt length prefix can demand. *)
let max_payload = 1 lsl 20

(* A registry snapshot has one entry per instrument; anything past this
   is a corrupt count, not a real simulator. *)
let max_list = 65_536
let max_string = 4_096

let kind_code = function
  | Hello _ -> 1
  | Setup _ -> 2
  | Lookup _ -> 3
  | Insert _ -> 4
  | Gossip _ -> 5
  | Repair _ -> 6
  | Get _ -> 7
  | Probe _ -> 8
  | Ack _ -> 9
  | Ack_float _ -> 10
  | Snapshot _ -> 11
  | Counters _ -> 12
  | Bye -> 13

let probe_code = function Mem -> 0 | Expiry -> 1 | Live_count -> 2 | Clear -> 3

let probe_of_code = function
  | 0 -> Some Mem
  | 1 -> Some Expiry
  | 2 -> Some Live_count
  | 3 -> Some Clear
  | _ -> None

(* ---- encoding ----------------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b v =
  let v = Int64.of_int v in
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done

let put_f64 b v =
  let bits = Int64.bits_of_float v in
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * shift)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let encode_body b msg =
  match msg with
  | Hello { node_id } -> put_i64 b node_id
  | Setup { nodes; members; keys; stor; eviction; seed } ->
      put_i64 b nodes;
      put_i64 b members;
      put_i64 b keys;
      put_i64 b stor;
      put_i64 b eviction;
      put_i64 b seed
  | Lookup { rid; span; src; dst; key } ->
      put_i64 b rid;
      put_i64 b span;
      put_i64 b src;
      put_i64 b dst;
      put_i64 b key
  | Insert { rid; peer; key; value; now; ttl } ->
      put_i64 b rid;
      put_i64 b peer;
      put_i64 b key;
      put_i64 b value;
      put_f64 b now;
      put_f64 b ttl
  | Repair { rid; peer; key; value; now; ttl } ->
      put_i64 b rid;
      put_i64 b peer;
      put_i64 b key;
      put_i64 b value;
      put_f64 b now;
      put_f64 b ttl
  | Gossip { span; src; dst; key } ->
      put_i64 b span;
      put_i64 b src;
      put_i64 b dst;
      put_i64 b key
  | Get { rid; peer; key; refresh; now; ttl } ->
      put_i64 b rid;
      put_i64 b peer;
      put_i64 b key;
      put_bool b refresh;
      put_f64 b now;
      put_f64 b ttl
  | Probe { rid; op; peer; key; now } ->
      put_i64 b rid;
      put_u8 b (probe_code op);
      put_i64 b peer;
      put_i64 b key;
      put_f64 b now
  | Ack { rid; ok; value } ->
      put_i64 b rid;
      put_bool b ok;
      put_i64 b value
  | Ack_float { rid; ok; value } ->
      put_i64 b rid;
      put_bool b ok;
      put_f64 b value
  | Snapshot { rid } -> put_i64 b rid
  | Counters { rid; node_id; counters } ->
      put_i64 b rid;
      put_i64 b node_id;
      put_u32 b (List.length counters);
      List.iter
        (fun (name, v) ->
          put_string b name;
          put_i64 b v)
        counters
  | Bye -> ()

let encode b msg =
  let body = Buffer.create 64 in
  put_u8 body version;
  put_u8 body (kind_code msg);
  encode_body body msg;
  put_u32 b (Buffer.length body);
  Buffer.add_buffer b body

let encode_bytes msg =
  let b = Buffer.create 64 in
  encode b msg;
  Buffer.to_bytes b

(* ---- decoding ----------------------------------------------------- *)

(* Body reader: a cursor over the payload slice.  Every read checks the
   remaining length, so a corrupt frame fails with [Malformed] instead
   of an out-of-bounds access. *)
type cursor = { buf : Bytes.t; mutable pos : int; stop : int }

exception Bad of string

let need c n = if c.stop - c.pos < n then raise (Bad "short body")

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  let a = get_u8 c in
  let b = get_u8 c in
  let d = get_u8 c in
  let e = get_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 c))
  done;
  Int64.to_int !v

let get_f64 c =
  need c 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 c))
  done;
  Int64.float_of_bits !v

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> raise (Bad (Printf.sprintf "bad boolean byte %d" v))

let get_string c =
  let n = get_u32 c in
  if n > max_string then raise (Bad (Printf.sprintf "string length %d over limit" n));
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let decode_body kind c =
  match kind with
  | 1 -> Hello { node_id = get_i64 c }
  | 2 ->
      let nodes = get_i64 c in
      let members = get_i64 c in
      let keys = get_i64 c in
      let stor = get_i64 c in
      let eviction = get_i64 c in
      let seed = get_i64 c in
      Setup { nodes; members; keys; stor; eviction; seed }
  | 3 ->
      let rid = get_i64 c in
      let span = get_i64 c in
      let src = get_i64 c in
      let dst = get_i64 c in
      let key = get_i64 c in
      Lookup { rid; span; src; dst; key }
  | 4 | 6 ->
      let rid = get_i64 c in
      let peer = get_i64 c in
      let key = get_i64 c in
      let value = get_i64 c in
      let now = get_f64 c in
      let ttl = get_f64 c in
      if kind = 4 then Insert { rid; peer; key; value; now; ttl }
      else Repair { rid; peer; key; value; now; ttl }
  | 5 ->
      let span = get_i64 c in
      let src = get_i64 c in
      let dst = get_i64 c in
      let key = get_i64 c in
      Gossip { span; src; dst; key }
  | 7 ->
      let rid = get_i64 c in
      let peer = get_i64 c in
      let key = get_i64 c in
      let refresh = get_bool c in
      let now = get_f64 c in
      let ttl = get_f64 c in
      Get { rid; peer; key; refresh; now; ttl }
  | 8 ->
      let rid = get_i64 c in
      let op =
        let code = get_u8 c in
        match probe_of_code code with
        | Some op -> op
        | None -> raise (Bad (Printf.sprintf "bad probe op %d" code))
      in
      let peer = get_i64 c in
      let key = get_i64 c in
      let now = get_f64 c in
      Probe { rid; op; peer; key; now }
  | 9 ->
      let rid = get_i64 c in
      let ok = get_bool c in
      let value = get_i64 c in
      Ack { rid; ok; value }
  | 10 ->
      let rid = get_i64 c in
      let ok = get_bool c in
      let value = get_f64 c in
      Ack_float { rid; ok; value }
  | 11 -> Snapshot { rid = get_i64 c }
  | 12 ->
      let rid = get_i64 c in
      let node_id = get_i64 c in
      let n = get_u32 c in
      if n > max_list then raise (Bad (Printf.sprintf "counter list length %d over limit" n));
      let counters =
        List.init n (fun _ ->
            let name = get_string c in
            let v = get_i64 c in
            (name, v))
      in
      Counters { rid; node_id; counters }
  | 13 -> Bye
  | _ -> assert false (* kind was range-checked by the caller *)

let decode buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    Error (Malformed "decode: pos/len out of range")
  else if len < 4 then Error (Truncated { need = 4; have = len })
  else
    let plen =
      (Char.code (Bytes.get buf pos) lsl 24)
      lor (Char.code (Bytes.get buf (pos + 1)) lsl 16)
      lor (Char.code (Bytes.get buf (pos + 2)) lsl 8)
      lor Char.code (Bytes.get buf (pos + 3))
    in
    if plen > max_payload then Error (Frame_too_large { length = plen; limit = max_payload })
    else if plen < 2 then Error (Malformed "payload shorter than its envelope")
    else if len < 4 + plen then Error (Truncated { need = 4 + plen; have = len })
    else
      let c = { buf; pos = pos + 4; stop = pos + 4 + plen } in
      let v = get_u8 c in
      if v <> version then Error (Bad_version v)
      else
        let kind = get_u8 c in
        if kind < 1 || kind > 13 then Error (Unknown_kind kind)
        else
          match decode_body kind c with
          | msg ->
              if c.pos <> c.stop then
                Error (Malformed (Printf.sprintf "%d trailing bytes" (c.stop - c.pos)))
              else Ok (msg, 4 + plen)
          | exception Bad why -> Error (Malformed why)

(* ---- equality and printing ---------------------------------------- *)

(* Floats compare by bit pattern so NaN payloads round-trip in tests. *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  match (a, b) with
  | Hello a, Hello b -> a.node_id = b.node_id
  | Setup a, Setup b ->
      a.nodes = b.nodes && a.members = b.members && a.keys = b.keys && a.stor = b.stor
      && a.eviction = b.eviction && a.seed = b.seed
  | Lookup a, Lookup b ->
      a.rid = b.rid && a.span = b.span && a.src = b.src && a.dst = b.dst && a.key = b.key
  | Insert a, Insert b ->
      a.rid = b.rid && a.peer = b.peer && a.key = b.key && a.value = b.value
      && feq a.now b.now && feq a.ttl b.ttl
  | Repair a, Repair b ->
      a.rid = b.rid && a.peer = b.peer && a.key = b.key && a.value = b.value
      && feq a.now b.now && feq a.ttl b.ttl
  | Gossip a, Gossip b ->
      a.span = b.span && a.src = b.src && a.dst = b.dst && a.key = b.key
  | Get a, Get b ->
      a.rid = b.rid && a.peer = b.peer && a.key = b.key && a.refresh = b.refresh
      && feq a.now b.now && feq a.ttl b.ttl
  | Probe a, Probe b ->
      a.rid = b.rid && a.op = b.op && a.peer = b.peer && a.key = b.key && feq a.now b.now
  | Ack a, Ack b -> a.rid = b.rid && a.ok = b.ok && a.value = b.value
  | Ack_float a, Ack_float b -> a.rid = b.rid && a.ok = b.ok && feq a.value b.value
  | Snapshot a, Snapshot b -> a.rid = b.rid
  | Counters a, Counters b ->
      a.rid = b.rid && a.node_id = b.node_id
      && List.length a.counters = List.length b.counters
      && List.for_all2
           (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && v1 = v2)
           a.counters b.counters
  | Bye, Bye -> true
  | ( ( Hello _ | Setup _ | Lookup _ | Insert _ | Gossip _ | Repair _ | Get _ | Probe _
      | Ack _ | Ack_float _ | Snapshot _ | Counters _ | Bye ),
      _ ) ->
      false

let probe_label = function
  | Mem -> "mem"
  | Expiry -> "expiry"
  | Live_count -> "live_count"
  | Clear -> "clear"

let pp ppf = function
  | Hello { node_id } -> Format.fprintf ppf "hello(node=%d)" node_id
  | Setup { nodes; members; keys; stor; eviction; seed } ->
      Format.fprintf ppf "setup(nodes=%d members=%d keys=%d stor=%d eviction=%d seed=%d)"
        nodes members keys stor eviction seed
  | Lookup { rid; span; src; dst; key } ->
      Format.fprintf ppf "lookup(rid=%d span=%d %d->%d key=%d)" rid span src dst key
  | Insert { rid; peer; key; value; now; ttl } ->
      Format.fprintf ppf "insert(rid=%d peer=%d key=%d value=%d now=%g ttl=%g)" rid peer
        key value now ttl
  | Gossip { span; src; dst; key } ->
      Format.fprintf ppf "gossip(span=%d %d->%d key=%d)" span src dst key
  | Repair { rid; peer; key; value; now; ttl } ->
      Format.fprintf ppf "repair(rid=%d peer=%d key=%d value=%d now=%g ttl=%g)" rid peer
        key value now ttl
  | Get { rid; peer; key; refresh; now; ttl } ->
      Format.fprintf ppf "get(rid=%d peer=%d key=%d refresh=%b now=%g ttl=%g)" rid peer
        key refresh now ttl
  | Probe { rid; op; peer; key; now } ->
      Format.fprintf ppf "probe(rid=%d op=%s peer=%d key=%d now=%g)" rid (probe_label op)
        peer key now
  | Ack { rid; ok; value } -> Format.fprintf ppf "ack(rid=%d ok=%b value=%d)" rid ok value
  | Ack_float { rid; ok; value } ->
      Format.fprintf ppf "ack_float(rid=%d ok=%b value=%g)" rid ok value
  | Snapshot { rid } -> Format.fprintf ppf "snapshot(rid=%d)" rid
  | Counters { rid; node_id; counters } ->
      Format.fprintf ppf "counters(rid=%d node=%d n=%d)" rid node_id (List.length counters)
  | Bye -> Format.fprintf ppf "bye"

let error_to_string = function
  | Truncated { need; have } -> Printf.sprintf "truncated frame: need %d bytes, have %d" need have
  | Frame_too_large { length; limit } ->
      Printf.sprintf "frame payload %d exceeds limit %d" length limit
  | Bad_version v -> Printf.sprintf "unsupported wire version %d" v
  | Unknown_kind k -> Printf.sprintf "unknown message kind %d" k
  | Malformed why -> "malformed frame: " ^ why
