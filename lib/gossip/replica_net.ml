type t = {
  replicas : int array; (* member position -> global peer index *)
  adj : int array array; (* member position -> member positions *)
  (* Flood scratch, reused across calls: generation-stamped visited set
     and a ring-buffer BFS queue, so the per-flood cost is free of the
     bool-array and Queue-cell allocations a fresh traversal would pay.
     Single-owner state — a subnet belongs to one simulated system. *)
  stamp : int array;
  queue : int array;
  mutable generation : int;
}

let build rng ~replicas ~chords =
  let n = Array.length replicas in
  if n = 0 then invalid_arg "Replica_net.build: empty replica set";
  if chords < 0 then invalid_arg "Replica_net.build: negative chords";
  (* Subnets are built lazily on the query path (first flood of a key),
     so construction cost is hot: accumulate each member's neighbor set
     in a flat fixed-capacity row with a linear duplicate scan —
     degrees stay small in practice, so the scan beats a tree set and
     allocates nothing per edge.  Sorting the rows reproduces the
     ascending order [Int_set.elements] returned. *)
  let cap = max 1 (n - 1) in
  let deg = Array.make n 0 in
  let rows = Array.make (n * cap) 0 in
  let connect a b =
    if a <> b then begin
      let base = a * cap in
      let d = deg.(a) in
      let dup = ref false in
      for k = 0 to d - 1 do
        if rows.(base + k) = b then dup := true
      done;
      if not !dup then begin
        rows.(base + d) <- b;
        deg.(a) <- d + 1
      end
    end
  in
  if n > 1 then
    for i = 0 to n - 1 do
      let succ = (i + 1) mod n in
      connect i succ;
      connect succ i;
      for _ = 1 to chords do
        let j = Pdht_util.Rng.int rng n in
        connect i j;
        connect j i
      done
    done;
  let adj =
    Array.init n (fun i ->
        let a = Array.sub rows (i * cap) deg.(i) in
        Array.sort Int.compare a;
        a)
  in
  { replicas; adj; stamp = Array.make n 0; queue = Array.make n 0; generation = 0 }

let size t = Array.length t.replicas
let replicas t = t.replicas
let neighbors t ~member = Array.map (fun pos -> t.replicas.(pos)) t.adj.(member)
(* Groups are small (the replication factor), so position lookup is a
   linear scan — building a hash index per subnet cost more at
   construction than every scan it ever served. *)
let position_of_peer t peer =
  let n = Array.length t.replicas in
  let rec go i = if i = n then -1 else if t.replicas.(i) = peer then i else go (i + 1) in
  go 0

let member_of_peer t peer =
  match position_of_peer t peer with -1 -> None | pos -> Some pos

type flood_result = { reached : int; messages : int }

let flood t ~online ~from_peer =
  match position_of_peer t from_peer with
  | -1 -> { reached = 0; messages = 0 }
  | start ->
      if not (online t.replicas.(start)) then { reached = 0; messages = 0 }
      else begin
        (if t.generation = max_int then begin
           Array.fill t.stamp 0 (Array.length t.stamp) 0;
           t.generation <- 0
         end);
        t.generation <- t.generation + 1;
        let gen = t.generation in
        let stamp = t.stamp and queue = t.queue in
        stamp.(start) <- gen;
        queue.(0) <- start;
        let head = ref 0 and tail = ref 1 in
        let reached = ref 1 in
        let messages = ref 0 in
        while !head < !tail do
          let pos = queue.(!head) in
          incr head;
          let nbrs = t.adj.(pos) in
          for i = 0 to Array.length nbrs - 1 do
            let q = nbrs.(i) in
            if online t.replicas.(q) then begin
              incr messages;
              if stamp.(q) <> gen then begin
                stamp.(q) <- gen;
                incr reached;
                queue.(!tail) <- q;
                incr tail
              end
            end
          done
        done;
        { reached = !reached; messages = !messages }
      end

let duplication_factor r =
  if r.reached = 0 then 0. else float_of_int r.messages /. float_of_int r.reached
