(** Pure control-flow core of the PDHT selection algorithm
    (Section 5.1): which step a query takes next, given what happened
    so far.

    The machine decides {e what} to do — contact an entry point, search
    the index, broadcast, re-insert — and the driver decides {e how}:
    the simulator executes steps against in-process substrate state,
    the process driver turns them into wire frames.  Feeding the
    outcome of each step back via {!step} yields the next {!action}
    until {!Finish}.

    The three strategies map to the paper's systems: [No_index] is pure
    broadcast, [Index_all] is the index-everything baseline (no
    broadcast fallback — a miss is final), [Partial] is the PDHT: index
    first, broadcast on a miss, re-insert what the broadcast found
    (entry-point failure degrades to broadcast {e without}
    re-insertion, since there is no reachable index to insert into). *)

type strategy = No_index | Index_all | Partial

type source = From_index | From_broadcast | Not_found

type outcome = { source : source; provider : int option }

type action =
  | Reach_entry
      (** find and contact a DHT entry point for the querying peer *)
  | Search_index       (** route to a responsible peer, check caches *)
  | Search_broadcast   (** flood the unstructured overlay *)
  | Insert_key of { provider : int }
      (** re-insert the broadcast-resolved key into the index *)
  | Finish of outcome  (** terminal; no further [step] calls *)

type event =
  | Entry_reached
  | Entry_failed       (** no online entry point / contact RPC failed *)
  | Index_hit of { provider : int }
  | Index_miss
  | Broadcast_found of { provider : int }
  | Broadcast_failed
  | Insert_done

type t

val start : strategy -> t * action
val step : t -> event -> t * action
(** @raise Invalid_argument on an event the current state cannot
    accept (including any event after {!Finish}) — drivers feeding the
    machine its own requested step's outcome never trigger this. *)
