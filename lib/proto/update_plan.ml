type action =
  | Reach_entry
  | Route
  | Spread
  | Finish of { delivered : bool }

type event =
  | Entry_reached
  | Entry_failed
  | Route_ok
  | Route_failed
  | Spread_done

type phase = Contacting | Routing | Spreading | Done

type t = { phase : phase }

let start (strategy : Query_plan.strategy) =
  match strategy with
  | Query_plan.Index_all -> ({ phase = Contacting }, Reach_entry)
  | Query_plan.No_index | Query_plan.Partial ->
      ({ phase = Done }, Finish { delivered = false })

let reject t event =
  let phase =
    match t.phase with
    | Contacting -> "contacting"
    | Routing -> "routing"
    | Spreading -> "spreading"
    | Done -> "done"
  in
  let event =
    match event with
    | Entry_reached -> "entry-reached"
    | Entry_failed -> "entry-failed"
    | Route_ok -> "route-ok"
    | Route_failed -> "route-failed"
    | Spread_done -> "spread-done"
  in
  invalid_arg (Printf.sprintf "Update_plan.step: %s event in %s phase" event phase)

let step t event =
  match (t.phase, event) with
  | Contacting, Entry_reached -> ({ phase = Routing }, Route)
  | Contacting, Entry_failed -> ({ phase = Done }, Finish { delivered = false })
  | Routing, Route_ok -> ({ phase = Spreading }, Spread)
  | Routing, Route_failed -> ({ phase = Done }, Finish { delivered = false })
  | Spreading, Spread_done -> ({ phase = Done }, Finish { delivered = true })
  | _, _ -> reject t event
