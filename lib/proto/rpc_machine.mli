(** Pure RPC-lifecycle state machine: timeout, retry, exponential
    backoff, settle-once delivery.

    This is the protocol core behind [Pdht_net.Rpc] (where the "clock"
    is the simulator engine) and the process driver's timer wheel
    (where it is [Unix.gettimeofday]).  The machine owns no clock and
    sends nothing: the driver feeds it events and interprets the
    returned action.  Attempt [k] (0-based) waits
    [timeout *. backoff ^ k] before expiring; after [retries]
    re-attempts the call fails.  Once settled — either way — every
    further event is [Ignore]. *)

type config = { timeout : float; retries : int; backoff : float }

type t
(** Immutable machine state; drivers thread it through {!step}. *)

type event =
  | Reply_received   (** a response for this call arrived *)
  | Attempt_timeout  (** the current attempt's deadline passed *)

type action =
  | Deliver_reply  (** settle successfully; invoke the caller's
                       continuation with [ok = true] *)
  | Retry of { attempt : int; timeout : float }
      (** launch attempt [attempt] (1-based retries) and arm its
          deadline [timeout] seconds out *)
  | Give_up        (** retry budget exhausted: settle failed *)
  | Ignore         (** already settled; a stale event — drop it *)

val create : timeout:float -> retries:int -> backoff:float -> t
val timeout_for : config -> attempt:int -> float
(** [timeout *. backoff ^ attempt]. *)

val current_timeout : t -> float
(** Deadline delay of the attempt in flight. *)

val attempt : t -> int
(** 0-based attempt currently in flight. *)

val settled : t -> bool
val step : t -> event -> t * action
