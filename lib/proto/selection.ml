type policy = {
  admit : now:float -> key_index:int -> bool;
  ttl_for : now:float -> key_index:int -> float;
}

let lease policy ~default_ttl ~now ~key_index =
  match policy with None -> default_ttl | Some p -> p.ttl_for ~now ~key_index

let admits policy ~now ~key_index =
  match policy with None -> true | Some p -> p.admit ~now ~key_index
