(** Pure control-flow core of a proactive key update (Eq. 9): contact
    an entry point, route the new value to a responsible peer, spread
    it through the key's replica subnetwork.

    Only the index-everything baseline issues proactive updates; under
    [Partial] the paper drops them (Section 5.1) and [No_index] has no
    index — both start already {!Finish}ed with [delivered = false].
    Entry or routing failure ends the update (the messages already
    spent still count; the driver owns accounting). *)

type action =
  | Reach_entry  (** find and contact a DHT entry point for the issuer *)
  | Route        (** DHT-route the update to a responsible peer *)
  | Spread       (** rumor-spread through the replica subnetwork *)
  | Finish of { delivered : bool }

type event =
  | Entry_reached
  | Entry_failed
  | Route_ok
  | Route_failed
  | Spread_done

type t

val start : Query_plan.strategy -> t * action
val step : t -> event -> t * action
(** @raise Invalid_argument on an event the current state cannot
    accept. *)
