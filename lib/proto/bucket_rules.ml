type view = { occupancy : int; capacity : int; present : bool }

type contact_decision = Promote | Insert | Probe_lrs

let on_contact v =
  if
    v.occupancy < 0 || v.capacity < 1
    || v.occupancy > v.capacity
    || (v.present && v.occupancy = 0)
  then invalid_arg "Bucket_rules.on_contact: bad view";
  if v.present then Promote else if v.occupancy < v.capacity then Insert else Probe_lrs

type probe_outcome = Lrs_alive | Lrs_dead

type eviction_decision = Keep_old_cache_new | Evict_insert_new

let on_probe = function
  | Lrs_alive -> Keep_old_cache_new
  | Lrs_dead -> Evict_insert_new

let probe_messages ~retries ~alive =
  if retries < 0 then invalid_arg "Bucket_rules.probe_messages: negative retries";
  if alive then 1 else 1 + retries

let refresh_due ~last_touched ~now ~interval =
  if not (interval > 0.) then
    invalid_arg "Bucket_rules.refresh_due: interval must be positive";
  now -. last_touched >= interval
