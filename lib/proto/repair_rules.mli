(** Pure decision rules of the anti-entropy repair pass; the driver
    (simulator or process) supplies state access and message delivery.

    Content rule: an item whose online replica count fell below
    [ceil (min_fraction *. repl)] — but still has at least one online
    source to copy from — is topped back up to [repl] holders, at two
    messages (request + data) per new copy.

    Index rule: a surviving cached entry is re-copied to group members
    that lost it with its {e remaining} TTL — repair must never extend
    a key's life, or it would fight the selection algorithm's
    expiration. *)

val content_threshold : min_fraction:float -> repl:int -> int
(** [ceil (min_fraction *. repl)]. *)

val needs_topup : live:int -> threshold:int -> bool
(** Below threshold yet not extinct ([live >= 1]); items with zero
    online replicas are unrecoverable by copying. *)

val topup_want : repl:int -> live:int -> int
val topup_attempts : want:int -> int
(** Random-candidate probe budget for finding [want] fresh holders. *)

val copy_messages : fresh:int -> int
(** Request + data per new copy. *)

val remaining_ttl : expiry:float -> now:float -> float option
(** [Some (expiry -. now)] when still positive; [None] for entries at
    or past expiry (nothing worth copying). *)
