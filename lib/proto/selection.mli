(** Selection-policy contract: which keys the PDHT admits into the
    index and what expiration lease they get.

    The record lives here, in the pure protocol layer, because every
    driver consults it the same way; [Pdht.policy] re-exports it.
    [None] everywhere means the paper's baseline behaviour: admit every
    resolved key, lease the system-wide default TTL. *)

type policy = {
  admit : now:float -> key_index:int -> bool;
      (** consulted once per would-be re-insertion (after a successful
          broadcast); a rejected key costs zero messages *)
  ttl_for : now:float -> key_index:int -> float;
      (** lease for insertions and query-hit refreshes *)
}

val lease : policy option -> default_ttl:float -> now:float -> key_index:int -> float
val admits : policy option -> now:float -> key_index:int -> bool
