type config = { timeout : float; retries : int; backoff : float }
type t = { config : config; attempt : int; settled : bool }

type event = Reply_received | Attempt_timeout

type action =
  | Deliver_reply
  | Retry of { attempt : int; timeout : float }
  | Give_up
  | Ignore

let create ~timeout ~retries ~backoff =
  { config = { timeout; retries; backoff }; attempt = 0; settled = false }

let timeout_for config ~attempt = config.timeout *. (config.backoff ** float_of_int attempt)
let current_timeout t = timeout_for t.config ~attempt:t.attempt
let attempt t = t.attempt
let settled t = t.settled

let step t event =
  if t.settled then (t, Ignore)
  else
    match event with
    | Reply_received -> ({ t with settled = true }, Deliver_reply)
    | Attempt_timeout ->
        if t.attempt < t.config.retries then
          let attempt = t.attempt + 1 in
          ( { t with attempt },
            Retry { attempt; timeout = timeout_for t.config ~attempt } )
        else ({ t with settled = true }, Give_up)
