let content_threshold ~min_fraction ~repl =
  int_of_float (Float.ceil (min_fraction *. float_of_int repl))

let needs_topup ~live ~threshold = live >= 1 && live < threshold
let topup_want ~repl ~live = repl - live
let topup_attempts ~want = (20 * want) + 50
let copy_messages ~fresh = 2 * fresh

let remaining_ttl ~expiry ~now =
  let remaining = expiry -. now in
  if remaining > 0. then Some remaining else None
