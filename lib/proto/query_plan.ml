type strategy = No_index | Index_all | Partial

type source = From_index | From_broadcast | Not_found

type outcome = { source : source; provider : int option }

type action =
  | Reach_entry
  | Search_index
  | Search_broadcast
  | Insert_key of { provider : int }
  | Finish of outcome

type event =
  | Entry_reached
  | Entry_failed
  | Index_hit of { provider : int }
  | Index_miss
  | Broadcast_found of { provider : int }
  | Broadcast_failed
  | Insert_done

type phase =
  | Contacting
  | Searching_index
  | Broadcasting of { insert_on_found : bool }
  | Inserting of { provider : int }
  | Done

type t = { strategy : strategy; phase : phase }

let miss = Finish { source = Not_found; provider = None }

let start strategy =
  match strategy with
  | No_index ->
      ({ strategy; phase = Broadcasting { insert_on_found = false } }, Search_broadcast)
  | Index_all | Partial -> ({ strategy; phase = Contacting }, Reach_entry)

let reject t event =
  let phase =
    match t.phase with
    | Contacting -> "contacting"
    | Searching_index -> "searching-index"
    | Broadcasting _ -> "broadcasting"
    | Inserting _ -> "inserting"
    | Done -> "done"
  in
  let event =
    match event with
    | Entry_reached -> "entry-reached"
    | Entry_failed -> "entry-failed"
    | Index_hit _ -> "index-hit"
    | Index_miss -> "index-miss"
    | Broadcast_found _ -> "broadcast-found"
    | Broadcast_failed -> "broadcast-failed"
    | Insert_done -> "insert-done"
  in
  invalid_arg (Printf.sprintf "Query_plan.step: %s event in %s phase" event phase)

let step t event =
  match (t.phase, event) with
  | Contacting, Entry_reached -> ({ t with phase = Searching_index }, Search_index)
  | Contacting, Entry_failed -> (
      match t.strategy with
      | Index_all ->
          (* The baseline indexes everything; with the index out of
             reach there is nothing else to ask. *)
          ({ t with phase = Done }, miss)
      | Partial ->
          (* Degrade to broadcast, but with no reachable entry point a
             found key cannot be re-inserted. *)
          ( { t with phase = Broadcasting { insert_on_found = false } },
            Search_broadcast )
      | No_index -> reject t event)
  | Searching_index, Index_hit { provider } ->
      ({ t with phase = Done }, Finish { source = From_index; provider = Some provider })
  | Searching_index, Index_miss -> (
      match t.strategy with
      | Index_all -> ({ t with phase = Done }, miss)
      | Partial ->
          ({ t with phase = Broadcasting { insert_on_found = true } }, Search_broadcast)
      | No_index -> reject t event)
  | Broadcasting { insert_on_found }, Broadcast_found { provider } ->
      if insert_on_found then
        ({ t with phase = Inserting { provider } }, Insert_key { provider })
      else
        ({ t with phase = Done }, Finish { source = From_broadcast; provider = Some provider })
  | Broadcasting _, Broadcast_failed -> ({ t with phase = Done }, miss)
  | Inserting { provider }, Insert_done ->
      ({ t with phase = Done }, Finish { source = From_broadcast; provider = Some provider })
  | _, _ -> reject t event
