(** Kademlia k-bucket maintenance as pure decision rules.

    Like {!Rpc_machine}, this module owns no routing state and performs
    no I/O: the live-table layer (in [lib/dht]) holds the mutable
    buckets and asks these rules what the protocol says to do.  Keeping
    the rules pure makes the eviction discipline unit-testable without a
    simulator and reusable verbatim by the process driver.

    The rules are Maymounkov & Mazieres' originals: a contacted peer is
    promoted to most-recently-seen; a newcomer enters a bucket with
    room; a full bucket liveness-probes its least-recently-seen entry
    and either keeps it (proven-alive peers are never displaced —
    long-lived peers stay reachable, the property heavy-tailed session
    traces reward) or evicts it for the newcomer. *)

type view = {
  occupancy : int;  (** live entries in the bucket *)
  capacity : int;   (** k *)
  present : bool;   (** the contacted peer is already an entry *)
}

type contact_decision =
  | Promote    (** already present: move to the most-recently-seen end *)
  | Insert     (** room: append as most-recently-seen *)
  | Probe_lrs  (** full: liveness-probe the least-recently-seen entry *)

val on_contact : view -> contact_decision
(** What to do when a peer in this bucket's range was just heard from.
    @raise Invalid_argument on a malformed view. *)

type probe_outcome = Lrs_alive | Lrs_dead

type eviction_decision =
  | Keep_old_cache_new
      (** the probed entry answered: it becomes most-recently-seen and
          the newcomer goes to the replacement cache *)
  | Evict_insert_new
      (** the probed entry is dead: evict it, admit the newcomer *)

val on_probe : probe_outcome -> eviction_decision

val probe_messages : retries:int -> alive:bool -> int
(** Message cost of one liveness probe under an RPC retry budget: an
    alive entry answers the first attempt (1 message); a dead one
    silently eats the whole ladder ([1 + retries] attempts — the
    {!Rpc_machine} schedule with every attempt timing out). *)

val refresh_due : last_touched:float -> now:float -> interval:float -> bool
(** A bucket not touched (no contact, probe or refresh) for [interval]
    seconds is stale and due a refresh lookup.
    @raise Invalid_argument unless [interval > 0.]. *)
