(** Bounded in-memory event trace for debugging simulations.

    A thin convenience wrapper over the typed tracing layer: a
    {!Pdht_obs.Tracer} wired to a fixed-capacity ring sink.  Recording
    is off by default and cheap when disabled; experiments enable it
    selectively (e.g. the quickstart example prints the first few trace
    lines to show what the system is doing).

    [record]/[recordf] write free-form [Custom] events and exist only
    for backward compatibility with external callers: in-tree
    subsystems emit typed categories (through {!record_event} or a
    subsystem tracer), and [Custom] is deprecated for internal use
    (see {!Pdht_obs.Event.category}).  Typed events land in the same
    ring and are rendered by {!events} via {!Pdht_obs.Event.pp}. *)

type t

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 10_000) most recent events. *)

val tracer : t -> Pdht_obs.Tracer.t
(** The underlying tracer, for wiring typed instrumentation (e.g.
    passing it into a {!Pdht_obs.Context}) or adding more sinks. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val record_event : t -> Pdht_obs.Event.t -> unit
(** Record one typed event (no-op when disabled) — the migration
    target for code that used to [record] free-form strings. *)

val record : t -> time:float -> string -> unit
(** No-op when disabled.  Emits an [Event.Custom] event; deprecated
    for internal use — prefer {!record_event} with a typed category. *)

val recordf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of [record]; the message is only built when
    enabled.  Same deprecation note as {!record}. *)

val events : t -> (float * string) list
(** Recorded events, oldest first, rendered to strings. *)

val typed_events : t -> Pdht_obs.Event.t list
(** Recorded events, oldest first, as typed values. *)

val length : t -> int
val clear : t -> unit
