(** Bounded in-memory event trace for debugging simulations.

    A thin convenience wrapper over the typed tracing layer: a
    {!Pdht_obs.Tracer} wired to a fixed-capacity ring sink.  Recording
    is off by default and cheap when disabled; experiments enable it
    selectively (e.g. the quickstart example prints the first few trace
    lines to show what the system is doing).

    Everything records typed {!Pdht_obs.Event.t} values (through
    {!record_event} or a subsystem tracer); {!events} renders them via
    {!Pdht_obs.Event.pp}. *)

type t

val create : ?capacity:int -> unit -> t
(** Keep at most [capacity] (default 10_000) most recent events. *)

val tracer : t -> Pdht_obs.Tracer.t
(** The underlying tracer, for wiring typed instrumentation (e.g.
    passing it into a {!Pdht_obs.Context}) or adding more sinks. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val record_event : t -> Pdht_obs.Event.t -> unit
(** Record one typed event (no-op when disabled). *)

val events : t -> (float * string) list
(** Recorded events, oldest first, rendered to strings. *)

val typed_events : t -> Pdht_obs.Event.t list
(** Recorded events, oldest first, as typed values. *)

val length : t -> int
val clear : t -> unit
