type category =
  | Query_unstructured
  | Query_index
  | Replica_flood
  | Index_insert
  | Maintenance
  | Update_gossip
  | Other

let category_index = function
  | Query_unstructured -> 0
  | Query_index -> 1
  | Replica_flood -> 2
  | Index_insert -> 3
  | Maintenance -> 4
  | Update_gossip -> 5
  | Other -> 6

let all_categories =
  [ Query_unstructured; Query_index; Replica_flood; Index_insert; Maintenance;
    Update_gossip; Other ]

let category_label = function
  | Query_unstructured -> "query-unstructured"
  | Query_index -> "query-index"
  | Replica_flood -> "replica-flood"
  | Index_insert -> "index-insert"
  | Maintenance -> "maintenance"
  | Update_gossip -> "update-gossip"
  | Other -> "other"

type t = {
  counts : int array;
  (* Optional tee into an observability registry: one named counter per
     category, kept in [category_index] order so [charge] stays O(1). *)
  mutable tee : Pdht_obs.Registry.counter array option;
}

let create () = { counts = Array.make (List.length all_categories) 0; tee = None }

let counter_name cat = "messages." ^ category_label cat

let attach_registry t registry =
  let counters =
    Array.of_list
      (List.map (fun cat -> Pdht_obs.Registry.counter registry (counter_name cat))
         all_categories)
  in
  (* Carry anything already charged over, so the registry totals agree
     with [total] no matter when the registry was attached. *)
  Array.iteri (fun i c -> Pdht_obs.Registry.incr counters.(i) c) t.counts;
  t.tee <- Some counters

let charge t cat n =
  if n < 0 then invalid_arg "Metrics.charge: negative count";
  let i = category_index cat in
  t.counts.(i) <- t.counts.(i) + n;
  match t.tee with
  | Some counters -> Pdht_obs.Registry.incr counters.(i) n
  | None -> ()

let count t cat = t.counts.(category_index cat)
let total t = Array.fold_left ( + ) 0 t.counts
let snapshot t = List.map (fun c -> (c, count t c)) all_categories

let diff ~before ~after =
  List.map (fun c -> (c, count after c - count before c)) all_categories

let copy t = { counts = Array.copy t.counts; tee = None }
let reset t = Array.fill t.counts 0 (Array.length t.counts) 0

module Series = struct
  type series = { bucket_width : float; mutable counts : int array; mutable used : int }

  let create ~bucket_width =
    if not (bucket_width > 0.) then invalid_arg "Metrics.Series.create: width must be positive";
    { bucket_width; counts = [||]; used = 0 }

  let charge s ~time n =
    if time < 0. then invalid_arg "Metrics.Series.charge: negative time";
    if n < 0 then invalid_arg "Metrics.Series.charge: negative count";
    let idx = int_of_float (Float.floor (time /. s.bucket_width)) in
    if idx >= Array.length s.counts then begin
      let bigger = Array.make (max 16 (2 * (idx + 1))) 0 in
      Array.blit s.counts 0 bigger 0 (Array.length s.counts);
      s.counts <- bigger
    end;
    s.counts.(idx) <- s.counts.(idx) + n;
    if idx + 1 > s.used then s.used <- idx + 1

  let buckets s =
    Array.init s.used (fun i -> (float_of_int i *. s.bucket_width, s.counts.(i)))
end
