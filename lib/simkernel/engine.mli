(** Discrete-event simulation engine.

    A thin deterministic scheduler: handlers are closures over whatever
    simulation state the caller owns.  Time is in seconds; the paper's
    "round" is one second (Section 2, footnote 1). *)

type t

exception Handler_failed of { time : float; label : string; exn : exn }
(** An event handler raised during {!run}.  [time] is the simulated
    instant of the failing event and [label] the handler's tag —
    ["event"] unless the handler was wrapped with {!labelled}.  A
    printer is registered, so [Printexc.to_string] (and therefore the
    runner's recorded failure messages) includes both. *)

val labelled : string -> (t -> unit) -> t -> unit
(** [labelled tag handler] is [handler] with failures annotated as
    [Handler_failed] carrying [tag] and the failure time.  Already
    annotated exceptions pass through unchanged. *)

val create : unit -> t

val now : t -> float
(** Current simulated time; 0. before the first event fires. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Run a handler [delay] seconds from [now].  Requires [delay >= 0.] *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Run a handler at absolute [time] (>= [now]). *)

val schedule_periodic : t -> first:float -> every:float -> (t -> unit) -> unit
(** Starting at absolute time [first], run the handler every [every]
    seconds forever (until the run's time horizon cuts it off).
    Tick [k] fires at exactly [first +. float k *. every] — times are
    recomputed from the tick index, not accumulated, so long horizons
    do not drift by an ulp per tick.  Requires [every > 0.]. *)

val run : t -> until:float -> unit
(** Process events in time order until the queue is empty or the next
    event is strictly after [until].  [now] ends at the time of the
    last processed event (or is left unchanged when nothing fired).
    Can be called again to continue a paused simulation.

    A handler exception aborts the run and escapes as
    {!Handler_failed} with the failing event's time attached (one
    [try] frame around the whole loop, so per-event dispatch stays
    allocation- and trap-free). *)

val pending : t -> int
(** Events still scheduled. *)

val events_processed : t -> int
(** Handlers executed so far, across all [run] calls.  Always counted,
    instrumented or not — it is one integer increment. *)

val instrument : ?sample_every:int -> t -> Pdht_obs.Registry.t -> unit
(** Register the engine's own telemetry in [registry] and keep it
    current while [run] executes:

    - ["engine.events_processed"] (counter) — handlers executed;
    - ["engine.queue_depth"] (gauge) — pending events, refreshed every
      [sample_every] (default 4096) handlers and at the end of [run];
    - ["engine.sim_time"] (gauge) — simulated now;
    - ["engine.sim_seconds_per_wall_second"] (histogram) — simulated
      seconds advanced per wall-clock second between refreshes, the
      run's throughput profile.

    Instrumentation costs one branch per event plus the periodic
    refresh; an un-instrumented engine pays only the branch. *)

val emit_snapshots : t -> every:float -> tracer:Pdht_obs.Tracer.t -> unit
(** Schedule a periodic [Engine]-category trace event every [every]
    simulated seconds carrying [messages] = events processed so far and
    [hops] = queue depth, then run the tracer's registered flushers
    ({!Pdht_obs.Tracer.add_flusher}) so JSONL channels stay usable if
    the run is interrupted.  The trace event is skipped while the
    tracer is disabled or filters out [Engine] events; flushers run on
    every tick regardless. *)
