module Event = Pdht_obs.Event
module Tracer = Pdht_obs.Tracer
module Sink = Pdht_obs.Sink

type t = {
  tracer : Tracer.t;
  ring : Sink.Ring.ring;
}

let create ?(capacity = 10_000) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  let tracer = Tracer.create () in
  let ring = Sink.Ring.create ~capacity in
  Tracer.add_sink tracer (Sink.Ring.sink ring);
  { tracer; ring }

let tracer t = t.tracer
let enable t = Tracer.enable t.tracer
let disable t = Tracer.disable t.tracer
let enabled t = Tracer.enabled t.tracer

let record_event t event = Tracer.emit t.tracer event
let typed_events t = Sink.Ring.contents t.ring

let events t =
  List.map (fun (e : Event.t) -> (e.Event.time, Event.to_line e)) (typed_events t)

let length t = Sink.Ring.length t.ring
let clear t = Sink.Ring.clear t.ring
