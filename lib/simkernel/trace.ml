module Event = Pdht_obs.Event
module Tracer = Pdht_obs.Tracer
module Sink = Pdht_obs.Sink

type t = {
  tracer : Tracer.t;
  ring : Sink.Ring.ring;
}

let create ?(capacity = 10_000) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  let tracer = Tracer.create () in
  let ring = Sink.Ring.create ~capacity in
  Tracer.add_sink tracer (Sink.Ring.sink ring);
  { tracer; ring }

let tracer t = t.tracer
let enable t = Tracer.enable t.tracer
let disable t = Tracer.disable t.tracer
let enabled t = Tracer.enabled t.tracer

let record_event t event = Tracer.emit t.tracer event

(* Legacy free-form path: the last in-tree producer of [Event.Custom].
   Kept for external callers; everything inside the simulator emits
   typed categories (via [record_event] or a subsystem tracer). *)
let record t ~time msg =
  record_event t (Event.make ~time ~detail:msg Event.Custom)

(* A formatter that discards everything: the disabled branch of
   [recordf] must not touch shared global state (the old implementation
   leaned on [Format.str_formatter], clobbering anyone else's pending
   output in it). *)
let devnull = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let recordf t ~time fmt =
  if enabled t then Format.kasprintf (fun msg -> record t ~time msg) fmt
  else Format.ikfprintf (fun _ -> ()) devnull fmt

let typed_events t = Sink.Ring.contents t.ring

let events t =
  List.map
    (fun (e : Event.t) ->
      ( e.Event.time,
        match e.Event.category with
        | Event.Custom -> e.Event.detail
        | _ -> Event.to_line e ))
    (typed_events t)

let length t = Sink.Ring.length t.ring
let clear t = Sink.Ring.clear t.ring
