type instruments = {
  events_counter : Pdht_obs.Registry.counter;
  depth_gauge : Pdht_obs.Registry.gauge;
  time_gauge : Pdht_obs.Registry.gauge;
  throughput : Pdht_obs.Histogram.t;
  sample_every : int;
  mutable since_sample : int;
  mutable last_wall : float;
  mutable last_sim : float;
}

type t = {
  queue : handler Event_queue.t;
  mutable now : float;
  mutable events_processed : int;
  mutable instruments : instruments option;
}

and handler = t -> unit

exception Handler_failed of { time : float; label : string; exn : exn }

(* Registered once at module load so [Printexc.to_string] — and with it
   every failure message the runner records — carries the simulation
   time and handler label instead of an anonymous exception. *)
let () =
  Printexc.register_printer (function
    | Handler_failed { time; label; exn } ->
        Some
          (Printf.sprintf "event handler %S failed at t=%g: %s" label time
             (Printexc.to_string exn))
    | _ -> None)

let labelled label handler t =
  try handler t with
  | Handler_failed _ as e -> raise e
  | exn -> raise (Handler_failed { time = t.now; label; exn })

let create () =
  { queue = Event_queue.create (); now = 0.; events_processed = 0; instruments = None }

let now t = t.now
let events_processed t = t.events_processed

let schedule_at t ~time handler =
  if time < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time handler

let schedule t ~delay handler =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.now +. delay) handler

let schedule_periodic t ~first ~every handler =
  if not (every > 0.) then invalid_arg "Engine.schedule_periodic: period must be positive";
  (* Tick k fires at [first + k * every], computed fresh each tick
     rather than accumulated with [+. every]: repeated addition drifts
     by one ulp per tick, which over a multi-day horizon shifts
     maintenance and sampling phases relative to each other.  The
     product form keeps tick N exact to one rounding no matter how
     large N gets.  Monotonicity holds because [first + k *. every] is
     nondecreasing in k and the engine is at tick k's time when tick
     k+1 is scheduled. *)
  let rec tick k engine =
    handler engine;
    schedule_at engine ~time:(first +. (float_of_int (k + 1) *. every)) (tick (k + 1))
  in
  schedule_at t ~time:first (tick 0)

let instrument ?(sample_every = 4096) t registry =
  if sample_every < 1 then invalid_arg "Engine.instrument: sample_every must be >= 1";
  let instruments =
    {
      events_counter = Pdht_obs.Registry.counter registry "engine.events_processed";
      depth_gauge = Pdht_obs.Registry.gauge registry "engine.queue_depth";
      time_gauge = Pdht_obs.Registry.gauge registry "engine.sim_time";
      throughput = Pdht_obs.Registry.histogram registry "engine.sim_seconds_per_wall_second";
      sample_every;
      since_sample = 0;
      last_wall = Unix.gettimeofday ();
      last_sim = t.now;
    }
  in
  t.instruments <- Some instruments

let sample ins t =
  Pdht_obs.Registry.set_gauge ins.depth_gauge (float_of_int (Event_queue.size t.queue));
  Pdht_obs.Registry.set_gauge ins.time_gauge t.now;
  let wall = Unix.gettimeofday () in
  let wall_delta = wall -. ins.last_wall in
  let sim_delta = t.now -. ins.last_sim in
  (* Sub-microsecond wall deltas are clock noise; skip the sample
     rather than record a garbage rate. *)
  if wall_delta > 1e-6 && sim_delta >= 0. then
    Pdht_obs.Histogram.record ins.throughput (sim_delta /. wall_delta);
  ins.last_wall <- wall;
  ins.last_sim <- t.now

let run t ~until =
  (* Allocation-free dispatch loop: [min_time]/[pop_min] touch the
     queue's flat arrays directly, so steady-state cost per event is the
     handler's own work plus heap bookkeeping — no options or tuples. *)
  let rec loop () =
    if not (Event_queue.is_empty t.queue) then begin
      let time = Event_queue.min_time t.queue in
      if time <= until then begin
        let handler = Event_queue.pop_min t.queue in
        t.now <- time;
        handler t;
        t.events_processed <- t.events_processed + 1;
        (match t.instruments with
        | Some ins ->
            Pdht_obs.Registry.incr ins.events_counter 1;
            ins.since_sample <- ins.since_sample + 1;
            if ins.since_sample >= ins.sample_every then begin
              ins.since_sample <- 0;
              sample ins t
            end
        | None -> ());
        loop ()
      end
    end
  in
  (* One try frame around the whole loop (not one per event — that
     would cost a trap per dispatch): [t.now] is already the failing
     event's time when the exception escapes, so the context is exact.
     Handlers wrapped with [labelled] arrive pre-annotated and pass
     through; anonymous handlers get the generic label. *)
  (try loop () with
  | Handler_failed _ as e -> raise e
  | exn -> raise (Handler_failed { time = t.now; label = "event"; exn }));
  match t.instruments with Some ins -> sample ins t | None -> ()

let pending t = Event_queue.size t.queue

let emit_snapshots t ~every ~tracer =
  schedule_periodic t ~first:every ~every (fun engine ->
      if Pdht_obs.Tracer.active tracer Pdht_obs.Event.Engine then
        Pdht_obs.Tracer.emit tracer
          (Pdht_obs.Event.make ~time:engine.now ~messages:engine.events_processed
             ~hops:(Event_queue.size engine.queue) Pdht_obs.Event.Engine);
      (* Flush the JSONL channels behind the sinks on every snapshot
         tick (even when the Engine category is filtered out), so an
         interrupted or crashed run leaves usable trace files. *)
      Pdht_obs.Tracer.flush tracer)
