(** Message accounting.

    The paper's single cost metric is the number of messages sent per
    second (Section 3: "As is a standard practice in P2P systems we
    consider the number of messages as the main cost").  Every simulated
    subsystem charges messages here, tagged by category, so experiment
    output can be broken down exactly like the model's cost terms. *)

type category =
  | Query_unstructured  (** flooding / random-walk search traffic (cSUnstr) *)
  | Query_index         (** DHT lookup traffic (cSIndx) *)
  | Replica_flood       (** replica-subnetwork flooding on index search (Eq. 16 term) *)
  | Index_insert        (** inserting a resolved key into the index *)
  | Maintenance         (** routing-table probe traffic (cRtn) *)
  | Update_gossip       (** replica update rumor spreading (cUpd) *)
  | Other

val category_label : category -> string
val all_categories : category list

type t

val create : unit -> t
val charge : t -> category -> int -> unit
(** Count [n] messages in [category].  Negative counts are rejected. *)

val attach_registry : t -> Pdht_obs.Registry.t -> unit
(** Tee every subsequent charge into a named counter
    ["messages.<category-label>"] in [registry]; counts charged before
    attaching are carried over, so the registry's per-category totals
    always sum to {!total}.  {!copy} produces a detached account and
    {!reset} leaves the registry's cumulative counters untouched. *)

val counter_name : category -> string
(** The registry counter name used by {!attach_registry}. *)

val count : t -> category -> int
val total : t -> int

val snapshot : t -> (category * int) list
(** All categories with their current counts. *)

val diff : before:t -> after:t -> (category * int) list
(** Per-category difference of two accounting states ([after] minus
    [before]). *)

val copy : t -> t
val reset : t -> unit

(** Time-bucketed counting for time-series output (e.g. messages per
    1000-second window across a popularity shift). *)
module Series : sig
  type series

  val create : bucket_width:float -> series
  (** Requires a positive width. *)

  val charge : series -> time:float -> int -> unit
  (** Count [n] messages at simulated [time] (>= 0).  Negative counts
      are rejected, matching {!Metrics.charge}. *)

  val buckets : series -> (float * int) array
  (** [(bucket_start_time, messages)] for every bucket up to the last
      one charged; intermediate empty buckets are included. *)
end
