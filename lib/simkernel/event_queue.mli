(** Priority queue of timed events (structure-of-arrays binary min-heap).

    Ties are broken by insertion order, so simulations are fully
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled.

    The heap is laid out as three parallel arrays (unboxed times,
    sequence numbers, payloads), so after warm-up {!add}, {!min_time}
    and {!pop_min} allocate nothing.  Slots are nulled as elements leave
    the heap, so popped payloads (e.g. handler closures capturing large
    state) are never kept live by the queue. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val capacity : 'a t -> int
(** Current backing-array capacity.  Grows on demand and is preserved by
    {!clear}, so a warm queue never re-allocates. *)

val add : 'a t -> time:float -> 'a -> unit
(** Schedule an event.  Allocation-free once the backing arrays are
    large enough.  @raise Invalid_argument on NaN time. *)

val min_time : 'a t -> float
(** Time of the earliest event.  The allocation-free hot-path variant of
    {!peek_time}.  @raise Invalid_argument when the queue is empty. *)

val peek_time : 'a t -> float option
(** Time of the earliest event, if any. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's payload.  The allocation-free
    hot-path variant of {!pop}; read {!min_time} first if the time is
    needed.  @raise Invalid_argument when the queue is empty. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val clear : 'a t -> unit
(** Drop all pending events.  Payload slots are nulled but capacity is
    retained for reuse. *)
