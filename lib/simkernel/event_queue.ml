(* Structure-of-arrays binary min-heap.

   Times live in an unboxed [float array] and tie-breaking sequence
   numbers in an [int array], so every comparison during [sift_up] /
   [sift_down] touches flat memory and allocates nothing.  Payloads are
   kept in a uniform [Obj.t array] (created from a unit filler, so it is
   never a flat float array and the generic reads/writes below are
   sound); slots are overwritten with the filler as soon as an element
   leaves the heap so popped handlers — closures that may capture large
   simulation state — are not kept live by the queue.

   After warm-up (once the backing arrays have grown to the high-water
   mark of the simulation) [add], [pop_min] and [min_time] allocate
   nothing; [clear] keeps the capacity so a reused queue never
   re-grows. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

(* Filler for empty payload slots.  [Obj.repr ()] is an immediate, so
   writing it is cheap and it keeps nothing alive. *)
let nothing = Obj.repr ()

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let size t = t.size
let capacity t = Array.length t.times

(* Strict heap order: earlier time wins, insertion order breaks ties. *)
let lt t i j =
  t.times.(i) < t.times.(j) || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let payload = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- payload

let grow t =
  let cap = max 16 (2 * Array.length t.times) in
  let times = Array.make cap 0. in
  let seqs = Array.make cap 0 in
  let payloads = Array.make cap nothing in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if t.size = Array.length t.times then grow t;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- Obj.repr payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let min_time t =
  if t.size = 0 then invalid_arg "Event_queue.min_time: empty queue";
  t.times.(0)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let pop_min t =
  if t.size = 0 then invalid_arg "Event_queue.pop_min: empty queue";
  let payload = t.payloads.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.payloads.(0) <- t.payloads.(last);
    t.payloads.(last) <- nothing;
    sift_down t 0
  end
  else t.payloads.(0) <- nothing;
  (Obj.obj payload : 'a)

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, pop_min t)
  end

let clear t =
  (* Keep the backing arrays (capacity is the whole point of a reusable
     queue) but drop every payload reference. *)
  if t.size > 0 then Array.fill t.payloads 0 t.size nothing;
  t.size <- 0
