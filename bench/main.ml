(* Benchmark / experiment harness.

   Regenerates every table and figure of the paper's evaluation plus the
   extension experiments indexed in DESIGN.md:

     table1           Table 1  parameters + derived model quantities
     fig1             Fig. 1   total msg/s per strategy vs query frequency
     fig2             Fig. 2   savings of ideal partial indexing
     fig3             Fig. 3   index size and pIndxd vs query frequency
     fig4             Fig. 4   savings of the TTL selection algorithm
     ttl_sensitivity  S 5.1.1  keyTtl estimation-error sensitivity
     sim_vs_model     E7       event-driven simulation vs Eq. 11/12/17
     sim_adaptivity   E6       hit-rate recovery across a popularity shift
     ablation         E8       flooding vs random walks; Chord vs P-Grid
     ttl_tuning       ext      fixed keyTtl grid vs the adaptive controller
     micro            -        Bechamel micro-benchmarks of the hot paths
     scale            ext      decade sweep 10^3..10^6 peers (bytes/peer,
                               events/s, hops vs log N); cap the largest
                               decade with --scale-max N

   Usage: main.exe [section ...] [-j N] [--scale-max N]
   (no sections = everything)

   -j/--jobs N runs each experiment's independent simulations on N
   domains (default: recommended_domain_count - 1).  Output is
   byte-identical for every N. *)

module Params = Pdht_model.Params
module Sweep = Pdht_model.Sweep
module Strategies = Pdht_model.Strategies
module Index_policy = Pdht_model.Index_policy
module Ttl_analysis = Pdht_model.Ttl_analysis
module Table = Pdht_util.Table
module Scenario = Pdht_work.Scenario
module System = Pdht_core.System
module Experiment = Pdht_core.Experiment
module Strategy = Pdht_core.Strategy
module Psel = Pdht_policy.Selector

let heading title note =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  if note <> "" then Printf.printf "%s\n" note;
  Printf.printf "================================================================\n"

let freq_label f = Printf.sprintf "1/%.0f" (1. /. f)

(* ------------------------------------------------------------------ *)
(* Analytic sections (paper scale: Table 1 parameters) *)

let section_table1 () =
  heading "Table 1 - parameters of the sample scenario"
    "(paper Section 4; the model sections below all use these values)";
  let t = Table.create ~columns:[ ("Description", Table.Left); ("Param.", Table.Left);
                                  ("Value", Table.Left) ] in
  List.iter (fun (d, s, v) -> Table.add_row t [ d; s; v ]) (Params.to_rows Params.default);
  Table.print t;
  let s = Index_policy.solve Params.default in
  Printf.printf
    "\nDerived at fQry = 1/30: cSUnstr = %.1f msg, cSIndx = %.2f msg,\n\
     cIndKey = %.4f msg/s, fMin = %.6f, maxRank = %d, numActivePeers = %d,\n\
     keyTtl = 1/fMin = %.0f s\n"
    s.Index_policy.c_s_unstr s.Index_policy.c_s_indx s.Index_policy.c_ind_key
    s.Index_policy.f_min s.Index_policy.max_rank s.Index_policy.num_active_peers
    (Strategies.default_key_ttl s)

let sweep_points () = Sweep.default_run Params.default

let section_fig1 () =
  heading "Fig. 1 - query frequency vs total sent messages per second"
    "(paper: indexAll flat ~20-25k; noIndex linear in fQry; partial below both)";
  let t =
    Table.create
      ~columns:
        [ ("fQry [1/s]", Table.Left); ("indexAll [msg/s]", Table.Right);
          ("noIndex [msg/s]", Table.Right); ("partial (ideal) [msg/s]", Table.Right) ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      Table.add_row t
        [ freq_label p.Sweep.f_qry;
          Printf.sprintf "%.0f" p.Sweep.index_all;
          Printf.sprintf "%.0f" p.Sweep.no_index;
          Printf.sprintf "%.0f" p.Sweep.partial_ideal ])
    (sweep_points ());
  Table.print t

let section_fig2 () =
  heading "Fig. 2 - savings of ideal partial indexing"
    "(paper: vs indexAll rising toward 1 at low rates; vs noIndex ~0.95 falling)";
  let t =
    Table.create
      ~columns:
        [ ("fQry [1/s]", Table.Left); ("vs indexAll", Table.Right);
          ("vs noIndex", Table.Right) ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      Table.add_row t
        [ freq_label p.Sweep.f_qry;
          Printf.sprintf "%.3f" p.Sweep.savings_ideal_vs_all;
          Printf.sprintf "%.3f" p.Sweep.savings_ideal_vs_none ])
    (sweep_points ());
  Table.print t

let section_fig3 () =
  heading "Fig. 3 - index size and answerable fraction (ideal partial)"
    "(paper: both fall as queries get rarer; small index still answers most queries)";
  let t =
    Table.create
      ~columns:
        [ ("fQry [1/s]", Table.Left); ("index size (maxRank/keys)", Table.Right);
          ("pIndxd (Eq. 5)", Table.Right); ("maxRank", Table.Right) ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      Table.add_row t
        [ freq_label p.Sweep.f_qry;
          Printf.sprintf "%.3f" p.Sweep.index_fraction;
          Printf.sprintf "%.3f" p.Sweep.p_indexed;
          string_of_int p.Sweep.max_rank ])
    (sweep_points ());
  Table.print t

let section_fig4 () =
  heading "Fig. 4 - savings with the TTL selection algorithm (Eq. 17)"
    "(paper: substantial savings except vs indexAll at very high query rates)";
  let t =
    Table.create
      ~columns:
        [ ("fQry [1/s]", Table.Left); ("vs indexAll", Table.Right);
          ("vs noIndex", Table.Right); ("keyTtl [s]", Table.Right);
          ("TTL index frac (Eq. 15)", Table.Right); ("pIndxd (Eq. 14)", Table.Right) ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      Table.add_row t
        [ freq_label p.Sweep.f_qry;
          Printf.sprintf "%.3f" p.Sweep.savings_selection_vs_all;
          Printf.sprintf "%.3f" p.Sweep.savings_selection_vs_none;
          Printf.sprintf "%.0f" p.Sweep.key_ttl;
          Printf.sprintf "%.3f" p.Sweep.ttl_index_fraction;
          Printf.sprintf "%.3f" p.Sweep.p_indexed_ttl ])
    (sweep_points ());
  Table.print t

let section_ttl_sensitivity () =
  heading "Section 5.1.1 - sensitivity to keyTtl estimation error"
    "(paper claim: +-50% mis-estimation decreases savings only slightly)";
  let table_at f_qry =
    Printf.printf "\nat fQry = %s:\n" (freq_label f_qry);
    let params = Params.with_query_frequency Params.default f_qry in
    let t =
      Table.create
        ~columns:
          [ ("TTL scale", Table.Right); ("keyTtl [s]", Table.Right);
            ("cost [msg/s]", Table.Right); ("savings vs indexAll", Table.Right);
            ("savings vs noIndex", Table.Right); ("savings drop", Table.Right) ]
    in
    List.iter
      (fun (r : Ttl_analysis.row) ->
        Table.add_row t
          [ Printf.sprintf "%.2f" r.Ttl_analysis.scale;
            Printf.sprintf "%.0f" r.Ttl_analysis.key_ttl;
            Printf.sprintf "%.0f" r.Ttl_analysis.total_cost;
            Printf.sprintf "%.3f" r.Ttl_analysis.savings_vs_all;
            Printf.sprintf "%.3f" r.Ttl_analysis.savings_vs_none;
            Printf.sprintf "%+.4f" r.Ttl_analysis.savings_drop_vs_ideal_ttl ])
      (Ttl_analysis.run params ~scales:Ttl_analysis.default_scales);
    Table.print t
  in
  table_at (1. /. 30.);
  table_at (1. /. 600.)

(* ------------------------------------------------------------------ *)
(* Simulation sections (scaled deployment: the full 20,000-peer news
   system does not fit an interactive bench run, so population and key
   space are scaled by 1/10 with rates preserved; EXPERIMENTS.md tracks
   the scale factors). *)

let sim_scenario =
  {
    Scenario.news_default with
    Scenario.num_peers = 1_000;
    keys = 2_000;
    duration = 1_800.;
    seed = 2004;
  }

let sim_options = System.Options.make ~repl:20 ~stor:100 ()

(* Worker domains for the experiment batches (-j/--jobs).  Results are
   identical for any value; only wall-clock changes. *)
let jobs = ref (Pdht_core.Runner.default_jobs ())

let section_sim_vs_model () =
  heading "E7 - event-driven simulation vs analytical model (scaled 1/10)"
    "(shape check: who wins and by roughly what factor; absolute numbers differ\n\
     because the simulator measures its own dup factors and warm-up misses)";
  let frequencies = [ 1. /. 30.; 1. /. 120.; 1. /. 600.; 1. /. 3600. ] in
  let rows = Experiment.face_off ~jobs:!jobs ~options:sim_options ~scenario:sim_scenario ~frequencies () in
  let t =
    Table.create
      ~columns:
        [ ("fQry [1/s]", Table.Left);
          ("sim all", Table.Right); ("sim none", Table.Right); ("sim partial", Table.Right);
          ("model all", Table.Right); ("model none", Table.Right); ("model partial", Table.Right);
          ("sim hit rate", Table.Right); ("Eq.14 pIndxd", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.face_off_row) ->
      Table.add_row t
        [ freq_label r.Experiment.f_qry;
          Printf.sprintf "%.0f" r.Experiment.sim_index_all;
          Printf.sprintf "%.0f" r.Experiment.sim_no_index;
          Printf.sprintf "%.0f" r.Experiment.sim_partial;
          Printf.sprintf "%.0f" r.Experiment.model_index_all;
          Printf.sprintf "%.0f" r.Experiment.model_no_index;
          Printf.sprintf "%.0f" r.Experiment.model_partial;
          Printf.sprintf "%.3f" r.Experiment.sim_hit_rate;
          Printf.sprintf "%.3f" r.Experiment.model_p_indexed_ttl ])
    rows;
  Table.print t

let section_sim_adaptivity () =
  heading "E6 - adaptivity to a changing query distribution (Section 5.2 claim)"
    "(the popular half of the key space swaps with the unpopular half mid-run;\n\
     the partial index must dip and then re-learn the new hot set)";
  let scenario =
    {
      sim_scenario with
      Scenario.num_peers = 800;
      keys = 1_600;
      duration = 2_400.;
      shift = Scenario.Swap_halves_at 1_200.;
      seed = 2005;
    }
  in
  let r = Experiment.adaptivity ~jobs:!jobs ~options:sim_options ~scenario () in
  Printf.printf
    "shift at t=%.0fs: hit rate %.3f before -> dip %.3f -> %.3f at end; recovery %s\n\n"
    r.Experiment.shift_time r.Experiment.before_hit_rate r.Experiment.dip_hit_rate
    r.Experiment.after_hit_rate
    (match r.Experiment.recovery_seconds with
    | Some s -> Printf.sprintf "within %.0f s" s
    | None -> "not reached in-run");
  let t =
    Table.create
      ~columns:
        [ ("t [s]", Table.Right); ("hit rate", Table.Right); ("indexed keys", Table.Right);
          ("msgs in bucket", Table.Right) ]
  in
  List.iter
    (fun (s : System.sample) ->
      (* Print one sample per 4 buckets to keep the table readable. *)
      if int_of_float s.System.time mod 240 = 0 then
        Table.add_row t
          [ Printf.sprintf "%.0f" s.System.time;
            Printf.sprintf "%.3f" s.System.hit_rate;
            string_of_int s.System.indexed_keys;
            string_of_int s.System.messages ])
    r.Experiment.series;
  Table.print t

let section_ablation () =
  heading "E8a - unstructured search mechanism (cSUnstr substrate)"
    "(paper assumes multiple random walks [LvCa02] because flooding is wasteful)";
  let rows = Experiment.search_ablation ~jobs:!jobs ~seed:7 ~peers:1_000 ~repl:50 ~trials:200 () in
  let t =
    Table.create
      ~columns:
        [ ("mechanism", Table.Left); ("mean msgs/search", Table.Right);
          ("success rate", Table.Right); ("empirical dup", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.search_ablation_row) ->
      Table.add_row t
        [ r.Experiment.mechanism;
          Printf.sprintf "%.1f" r.Experiment.mean_messages;
          Printf.sprintf "%.3f" r.Experiment.success_rate;
          (if Float.is_nan r.Experiment.empirical_dup then "-"
           else Printf.sprintf "%.2f" r.Experiment.empirical_dup) ])
    rows;
  Table.print t;
  Printf.printf "(model Eq. 6 for these parameters: %.0f msgs)\n"
    (Pdht_overlay.Unstructured_search.expected_cost_model ~peers:1_000 ~repl:50 ~dup:1.8);
  heading "E8b - structured substrates: Chord / P-Grid / Kademlia / Pastry lookups"
    "(all four track Eq. 7 = 1/2 log2 n up to their branching factors;\n\
     Kademlia spends more messages per hop on its alpha=3 parallel probes,\n\
     Pastry resolves 2 bits per hop with base-4 digits; 0% and 15% churn)";
  let t2 =
    Table.create
      ~columns:
        [ ("backend", Table.Left); ("churn", Table.Right); ("mean msgs", Table.Right);
          ("mean hops", Table.Right); ("Eq. 7", Table.Right); ("success", Table.Right) ]
  in
  List.iter
    (fun offline_fraction ->
      List.iter
        (fun (r : Experiment.backend_ablation_row) ->
          Table.add_row t2
            [ r.Experiment.backend;
              Printf.sprintf "%.0f%%" (100. *. offline_fraction);
              Printf.sprintf "%.2f" r.Experiment.mean_lookup_messages;
              Printf.sprintf "%.2f" r.Experiment.mean_hops;
              Printf.sprintf "%.2f" r.Experiment.model_expectation;
              Printf.sprintf "%.3f" r.Experiment.success_rate ])
        (Experiment.backend_ablation ~jobs:!jobs ~seed:8 ~members:1_024 ~trials:400 ~offline_fraction ()))
    [ 0.; 0.15 ];
  Table.print t2

let section_ttl_tuning () =
  heading "Extension - self-tuning keyTtl (paper Section 5.1.1 future work)"
    "(the adaptive controller estimates cSUnstr/cSIndx2/cRtn from live traffic)";
  let scenario = { sim_scenario with Scenario.num_peers = 600; keys = 1_200; seed = 2006 } in
  let rows =
    Experiment.ttl_tuning ~jobs:!jobs ~options:sim_options ~scenario
      ~fixed_ttls:[ 30.; 120.; 600.; 3_000. ] ()
  in
  let t =
    Table.create
      ~columns:
        [ ("configuration", Table.Left); ("final keyTtl [s]", Table.Right);
          ("msg/s", Table.Right); ("hit rate", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.ttl_tuning_row) ->
      Table.add_row t
        [ r.Experiment.label;
          Printf.sprintf "%.0f" r.Experiment.key_ttl_final;
          Printf.sprintf "%.1f" r.Experiment.messages_per_second;
          Printf.sprintf "%.3f" r.Experiment.hit_rate ])
    rows;
  Table.print t

let section_backends_e2e () =
  heading "E19 - the whole PDHT on every structured substrate"
    "(the paper: 'our proposal is generic enough such that it can be used for\n\
     any of the DHT based systems' — the full selection algorithm end-to-end\n\
     on Chord, P-Grid, Kademlia and Pastry with identical workloads)";
  let scenario = { sim_scenario with Scenario.num_peers = 500; keys = 1_000; seed = 2019 } in
  let rows = Experiment.backend_face_off ~jobs:!jobs ~options:sim_options ~scenario () in
  let t =
    Table.create
      ~columns:
        [ ("backend", Table.Left); ("hit rate", Table.Right); ("msg/s", Table.Right);
          ("answer rate", Table.Right); ("routing msgs", Table.Right);
          ("replica-flood msgs", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.backend_system_row) ->
      Table.add_row t
        [ r.Experiment.backend_name;
          Printf.sprintf "%.3f" r.Experiment.hit_rate;
          Printf.sprintf "%.1f" r.Experiment.messages_per_second;
          Printf.sprintf "%.3f" r.Experiment.answer_rate;
          string_of_int r.Experiment.index_messages;
          string_of_int r.Experiment.replica_flood_messages ])
    rows;
  Table.print t;
  Printf.printf
    "(backends trade routing hops against replica-group shape: Chord pays in\n\
     routing, P-Grid in subnet floods — nearly identical totals, opposite mix)\n"

let section_churn () =
  heading "E12 - selection algorithm under churn"
    "(the paper's premise: P2P clients are extremely transient [ChRa03];\n\
     partial run at decreasing stationary availability, 10-min mean sessions)";
  let scenario = { sim_scenario with Scenario.num_peers = 600; keys = 1_200; seed = 2007 } in
  let rows =
    Experiment.churn_sensitivity ~jobs:!jobs ~options:sim_options ~scenario
      ~availabilities:[ 1.0; 0.9; 0.75; 0.5 ] ()
  in
  let t =
    Table.create
      ~columns:
        [ ("availability", Table.Right); ("hit rate", Table.Right);
          ("answer rate", Table.Right); ("msg/s", Table.Right);
          ("indexed keys", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.churn_row) ->
      Table.add_row t
        [ Printf.sprintf "%.2f" r.Experiment.availability;
          Printf.sprintf "%.3f" r.Experiment.hit_rate;
          Printf.sprintf "%.3f" r.Experiment.answer_rate;
          Printf.sprintf "%.1f" r.Experiment.messages_per_second;
          string_of_int r.Experiment.indexed_keys ])
    rows;
  Table.print t

let section_workloads () =
  heading "E13 - index response to workload shape"
    "(skew is what makes partial indexing pay: flatter query distributions\n\
     index more keys for a lower hit rate)";
  let scenario = { sim_scenario with Scenario.num_peers = 600; keys = 1_200; seed = 2008 } in
  let rows = Experiment.workload_mix ~jobs:!jobs ~options:sim_options ~scenario () in
  let t =
    Table.create
      ~columns:
        [ ("workload", Table.Left); ("hit rate", Table.Right); ("msg/s", Table.Right);
          ("indexed fraction", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.workload_row) ->
      Table.add_row t
        [ r.Experiment.workload;
          Printf.sprintf "%.3f" r.Experiment.hit_rate;
          Printf.sprintf "%.1f" r.Experiment.messages_per_second;
          Printf.sprintf "%.3f" r.Experiment.indexed_fraction ])
    rows;
  Table.print t

let section_seeds () =
  heading "Seed replication - statistical confidence of the headline numbers"
    "(the partial strategy re-run over five independent seeds)";
  let scenario = { sim_scenario with Scenario.num_peers = 600; keys = 1_200 } in
  let options = sim_options in
  let key_ttl = System.derive_key_ttl scenario options in
  let stats =
    Experiment.replicate_seeds ~jobs:!jobs ~options ~scenario
      ~strategy:(Strategy.Partial_index { key_ttl })
      ~seeds:[ 1; 2; 3; 4; 5 ] ()
  in
  Printf.printf "%d runs: %.1f +- %.1f msg/s, hit rate %.3f +- %.3f\n"
    stats.Experiment.runs stats.Experiment.mean_messages_per_second
    stats.Experiment.sd_messages_per_second stats.Experiment.mean_hit_rate
    stats.Experiment.sd_hit_rate

let section_fullscale () =
  heading "E18 - full-scale spot check: the actual Table-1 deployment"
    "(20,000 peers, 40,000 keys, repl 50, fQry 1/30 — every message simulated;\n\
     120 simulated seconds, so the TTL index is still warming up toward Eq. 14's\n\
     steady state; compare the measured msg/s with Eq. 17's prediction)";
  let scenario =
    {
      Scenario.news_default with
      Scenario.num_peers = 20_000;
      keys = 40_000;
      f_qry = 1. /. 30.;
      duration = 120.;
      seed = 2018;
    }
  in
  let options = System.Options.make ~repl:50 ~stor:100 () in
  let key_ttl = System.derive_key_ttl scenario options in
  let report = System.run scenario (Strategy.Partial_index { key_ttl }) options in
  let params = Params.default in
  let model = (Strategies.partial_selection params ~key_ttl).Strategies.total in
  Printf.printf
    "%d queries in %.0f s over %d DHT members (keyTtl = %.0f s)\n\
     measured: %.0f msg/s, hit rate %.3f (Eq. 14 steady state: %.3f)\n\
     model Eq. 17 at these parameters: %.0f msg/s\n\
     per-query cost p50/p95/p99: %.0f / %.0f / %.0f msgs\n"
    report.System.queries scenario.Scenario.duration report.System.active_members key_ttl
    report.System.messages_per_second report.System.hit_rate
    (Strategies.ttl_state params ~key_ttl).Strategies.p_indexed_ttl model
    report.System.query_cost_p50 report.System.query_cost_p95 report.System.query_cost_p99

let section_bootstrap () =
  heading "E16 - P-Grid self-organizing bootstrap ([Aber01])"
    "(the paper's platform builds its trie by random pairwise exchanges with no\n\
     coordination; mean path length should converge to ~log2 n = 9 for n = 512)";
  let rng = Pdht_util.Rng.create ~seed:16 in
  let boot = Pdht_dht.Pgrid_bootstrap.create ~members:512 () in
  let t =
    Table.create
      ~columns:
        [ ("meetings", Table.Right); ("mean depth", Table.Right);
          ("depth range", Table.Right); ("distinct paths", Table.Right);
          ("refs/peer", Table.Right); ("lookup success", Table.Right) ]
  in
  let total = ref 0 in
  List.iter
    (fun meetings ->
      Pdht_dht.Pgrid_bootstrap.run_exchanges boot rng ~meetings;
      total := !total + meetings;
      let s = Pdht_dht.Pgrid_bootstrap.stats boot in
      let rate = Pdht_dht.Pgrid_bootstrap.lookup_success_rate boot rng ~trials:300 in
      Table.add_row t
        [ string_of_int !total;
          Printf.sprintf "%.2f" s.Pdht_dht.Pgrid_bootstrap.mean_path_length;
          Printf.sprintf "[%d,%d]" s.Pdht_dht.Pgrid_bootstrap.min_path_length
            s.Pdht_dht.Pgrid_bootstrap.max_path_length;
          string_of_int s.Pdht_dht.Pgrid_bootstrap.distinct_paths;
          Printf.sprintf "%.1f" s.Pdht_dht.Pgrid_bootstrap.mean_refs;
          Printf.sprintf "%.3f" rate ])
    [ 256; 256; 512; 1024; 2048; 4096 ];
  Table.print t

let section_membership () =
  heading "E17 - Chord membership dynamics (joins, crashes, stabilization)"
    "(the substrate behind 'peers continuously join and leave': grow a ring\n\
     node by node, crash a quarter of it, and watch stabilization heal it;\n\
     'correct' = lookup answer matches the ideal owner under perfect pointers)";
  let module CD = Pdht_dht.Chord_dynamic in
  let rng = Pdht_util.Rng.create ~seed:17 in
  let t = CD.create rng ~capacity:400 () in
  let first = CD.bootstrap t in
  let members = ref [ first ] in
  let join_messages = ref 0 in
  let stabilize_messages = ref 0 in
  while CD.node_count t < 256 do
    let alive = List.filter (CD.is_member t) !members in
    let via = List.nth alive (Pdht_util.Rng.int rng (List.length alive)) in
    (match CD.join t ~via with
    | Ok (node, msgs) ->
        members := node :: !members;
        join_messages := !join_messages + msgs
    | Error _ -> ());
    stabilize_messages := !stabilize_messages + CD.stabilize t rng
  done;
  for _ = 1 to 15 do
    stabilize_messages := !stabilize_messages + CD.stabilize t rng
  done;
  let correct trials =
    let alive = List.filter (CD.is_member t) !members in
    let ok = ref 0 in
    for _ = 1 to trials do
      let key = Pdht_util.Bitkey.random rng in
      let src = List.nth alive (Pdht_util.Rng.int rng (List.length alive)) in
      let o = CD.lookup t ~source:src ~key in
      if o.CD.responsible = CD.ideal_responsible t key then incr ok
    done;
    float_of_int !ok /. float_of_int trials
  in
  Printf.printf
    "grown to %d nodes: ring consistent = %b, lookup correctness %.3f\n\
     (join cost %.1f msg/join, stabilization %.1f msg/node/round)\n"
    (CD.node_count t) (CD.ring_consistent t) (correct 300)
    (float_of_int !join_messages /. 255.)
    (float_of_int !stabilize_messages /. (255. +. 15.) /. 256.);
  let alive = List.filter (CD.is_member t) !members in
  List.iteri (fun i m -> if i mod 4 = 0 then CD.crash t ~node:m) alive;
  Printf.printf "crashed 25%% (-> %d nodes): consistent = %b\n" (CD.node_count t)
    (CD.ring_consistent t);
  let rounds = ref 0 in
  while (not (CD.ring_consistent t)) && !rounds < 60 do
    incr rounds;
    ignore (CD.stabilize t rng)
  done;
  Printf.printf
    "stabilization healed the ring in %d rounds; lookup correctness %.3f\n" !rounds
    (correct 300)

let section_diurnal () =
  heading "E15 - adaptation to changing query frequency (busy/calm day)"
    "(paper Section 4: per-peer rates swing between 1/30 and much calmer;\n\
     with TTL eviction the index must breathe with the load — the time-domain\n\
     analogue of Fig. 3's frequency axis)";
  let scenario =
    {
      sim_scenario with
      Scenario.num_peers = 600;
      keys = 1_200;
      duration = 4_800.;
      seed = 2010;
    }
  in
  let r =
    Experiment.diurnal ~jobs:!jobs ~options:sim_options ~scenario ~calm_f_qry:(1. /. 600.)
      ~period:1_600. ()
  in
  Printf.printf
    "busy phases: %.0f keys indexed on average (hit rate %.3f)\n\
     calm phases: %.0f keys indexed on average (hit rate %.3f)\n\n"
    r.Experiment.busy_indexed_mean r.Experiment.busy_hit_rate
    r.Experiment.calm_indexed_mean r.Experiment.calm_hit_rate;
  let t =
    Table.create
      ~columns:
        [ ("t [s]", Table.Right); ("phase", Table.Left); ("indexed", Table.Right);
          ("hit rate", Table.Right) ]
  in
  List.iter
    (fun (s : System.sample) ->
      if int_of_float s.System.time mod 240 = 0 then
        Table.add_row t
          [ Printf.sprintf "%.0f" s.System.time;
            (if Float.rem s.System.time 1_600. /. 1_600. < 0.5 then "busy" else "calm");
            string_of_int s.System.indexed_keys;
            Printf.sprintf "%.3f" s.System.hit_rate ])
    r.Experiment.series;
  Table.print t

let section_eviction () =
  heading "E14 - cache-eviction policy under pressure"
    "(per-peer cache starved to stor=20 with an under-provisioned DHT; with a\n\
     single global keyTtl, expiry = last-query + keyTtl, so evict-soonest-expiry\n\
     and LRU coincide exactly — random eviction is the one that pays)";
  let scenario = { sim_scenario with Scenario.num_peers = 600; keys = 1_200; seed = 2009 } in
  let rows = Experiment.eviction_ablation ~jobs:!jobs ~options:sim_options ~scenario ~stor:20 () in
  let t =
    Table.create
      ~columns:
        [ ("policy", Table.Left); ("hit rate", Table.Right); ("msg/s", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.eviction_row) ->
      Table.add_row t
        [ r.Experiment.policy;
          Printf.sprintf "%.3f" r.Experiment.hit_rate;
          Printf.sprintf "%.1f" r.Experiment.messages_per_second ])
    rows;
  Table.print t

let section_arity () =
  heading "Extension - k-ary key space (paper Section 3.2, footnote 3)"
    "(generalized Eq. 7/8: wider digits shorten lookups but grow the routing\n\
     tables the maintenance traffic must probe; arity 2 is the paper's model)";
  let t =
    Table.create
      ~columns:
        [ ("arity", Table.Right); ("cSIndx [msg]", Table.Right);
          ("table entries", Table.Right); ("cRtn [msg/key/s]", Table.Right);
          ("indexAll total [msg/s]", Table.Right) ]
  in
  List.iter
    (fun (p : Pdht_model.Kary.point) ->
      Table.add_row t
        [ string_of_int p.Pdht_model.Kary.arity;
          Printf.sprintf "%.2f" p.Pdht_model.Kary.c_s_indx;
          Printf.sprintf "%.1f" p.Pdht_model.Kary.table_entries;
          Printf.sprintf "%.3f" p.Pdht_model.Kary.c_rtn;
          Printf.sprintf "%.0f" p.Pdht_model.Kary.index_all_total ])
    (Pdht_model.Kary.sweep Params.default ~arities:[ 2; 4; 8; 16; 32 ]);
  Table.print t

let section_replication_planning () =
  heading "Extension - replication planning ([VaCh02], assumed by the paper)"
    "(pick the replication factor: availability floor from churn, then the\n\
     cost-minimising factor above it; Table-1 scenario, peers 50% available)";
  let t =
    Table.create
      ~columns:
        [ ("repl", Table.Right); ("item availability", Table.Right);
          ("cSUnstr [msg]", Table.Right); ("Eq.17 cost [msg/s]", Table.Right) ]
  in
  let repls = [ 7; 15; 25; 50; 100; 200 ] in
  let curve = Pdht_model.Replication_planner.cost_curve Params.default ~repls in
  List.iter2
    (fun repl (_, c_s_unstr, cost) ->
      Table.add_row t
        [ string_of_int repl;
          Printf.sprintf "%.4f"
            (Pdht_model.Replication_planner.item_availability ~peer_availability:0.5 ~repl);
          Printf.sprintf "%.0f" c_s_unstr;
          Printf.sprintf "%.0f" cost ])
    repls curve;
  Table.print t;
  let plan =
    Pdht_model.Replication_planner.plan Params.default ~peer_availability:0.5 ~target:0.99
      ~max_repl:200
  in
  Printf.printf
    "\nplanner: 99%% availability at 50%% peer uptime needs >= %d replicas;\n\
     cheapest factor in [floor, 200] is repl = %d (%.4f availability, %.0f msg/s)\n"
    plan.Pdht_model.Replication_planner.floor plan.Pdht_model.Replication_planner.repl
    plan.Pdht_model.Replication_planner.achieved_availability
    plan.Pdht_model.Replication_planner.partial_cost

(* ------------------------------------------------------------------ *)
(* Perf run: instrumented simulation, exported as BENCH_pdht.json *)

let section_perf () =
  heading "Perf - instrumented partial-index run (writes BENCH_pdht.json)"
    "(wall-clock engine throughput, allocation counters, and runner scaling,\n\
     exported as JSON so runs can be compared across commits)";
  let module Json = Pdht_obs.Json in
  let scenario =
    {
      sim_scenario with
      Scenario.num_peers = 600;
      keys = 1_200;
      duration = 1_200.;
      seed = 2020;
    }
  in
  let options = sim_options in
  let key_ttl = System.derive_key_ttl scenario options in
  (* One discarded warm-up run, then best wall-clock of three measured
     runs.  The warm-up pays the process's one-off costs (page faults
     on fresh heap chunks, the GC growing its heaps to steady state);
     taking the minimum of the repeats filters scheduler noise, which
     on a small shared box swings single measurements by +-20%.  The
     run is deterministic, so every repeat produces the identical
     report — only the wall-clock varies, and the fastest repeat is
     the best estimate of what the code actually costs.  Each repeat
     gets its own observability context so [engine.events_processed]
     counts one run. *)
  let partial = Strategy.Partial_index { key_ttl } in
  let (_ : System.report) =
    System.run ~obs:(Pdht_obs.Context.create ()) scenario partial options
  in
  let measure () =
    let obs = Pdht_obs.Context.create () in
    let gc0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let report = System.run ~obs scenario partial options in
    let wall = Unix.gettimeofday () -. t0 in
    let gc1 = Gc.quick_stat () in
    (wall, gc0, gc1, obs, report)
  in
  let best = ref (measure ()) in
  for _ = 2 to 3 do
    let ((wall, _, _, _, _) as m) = measure () in
    let best_wall, _, _, _, _ = !best in
    if wall < best_wall then best := m
  done;
  let wall, gc0, gc1, obs, report = !best in
  let minor_words_run = gc1.Gc.minor_words -. gc0.Gc.minor_words in
  let minor_collections_run = gc1.Gc.minor_collections - gc0.Gc.minor_collections in
  let registry = Pdht_obs.Context.registry obs in
  let engine_events =
    match Pdht_obs.Registry.counter_value_by_name registry "engine.events_processed" with
    | Some n -> n
    | None -> 0
  in
  let events_per_second = if wall > 0. then float_of_int engine_events /. wall else 0. in
  let minor_words_per_event =
    if engine_events > 0 then minor_words_run /. float_of_int engine_events else 0.
  in
  (* Allocation probes for the two hot paths this bench guards: the event
     queue must be allocation-free after warm-up, and a scratch-reusing
     flood must allocate only its result record (a fresh-scratch flood
     pays the visited set and frontier buffers every call). *)
  let minor_words_per_op ~warmup ~iters f =
    for _ = 1 to warmup do
      f ()
    done;
    let w0 = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    (Gc.minor_words () -. w0) /. float_of_int iters
  in
  let queue_words_per_op =
    let q = Pdht_sim.Event_queue.create () in
    minor_words_per_op ~warmup:10_000 ~iters:100_000 (fun () ->
        Pdht_sim.Event_queue.add q ~time:1.0 0;
        ignore (Pdht_sim.Event_queue.pop_min q))
  in
  let flood_topo =
    Pdht_overlay.Topology.random_regularish (Pdht_util.Rng.create ~seed:7) ~peers:2_000
      ~degree:4
  in
  let flood_online _ = true in
  let flood_holds _ = false in
  let flood_words ?scratch () =
    minor_words_per_op ~warmup:50 ~iters:500 (fun () ->
        ignore
          (Pdht_overlay.Flood.search ?scratch flood_topo ~online:flood_online
             ~holds:flood_holds ~source:0 ~ttl:6))
  in
  let flood_scratch_words = flood_words ~scratch:(Pdht_overlay.Scratch.create ()) () in
  let flood_fresh_words = flood_words () in
  (* Storage probes: the open-addressed table's expiry sweep and the
     put/get cycle must both run without allocating — [expire] used to
     build a list of doomed keys per call, which at simulation scale was
     a steady allocation tax proportional to live entries. *)
  let storage_expire_words =
    let store = Pdht_dht.Storage.create ~capacity:256 () in
    for i = 0 to 199 do
      Pdht_dht.Storage.put store ~key:(Pdht_util.Bitkey.of_int i) ~value:i ~now:0.
        ~ttl:(3_600. +. float_of_int i)
    done;
    minor_words_per_op ~warmup:1_000 ~iters:100_000 (fun () ->
        ignore (Pdht_dht.Storage.expire store ~now:1.0))
  in
  let storage_put_get_words =
    let store = Pdht_dht.Storage.create ~capacity:256 () in
    let i = ref 0 in
    minor_words_per_op ~warmup:1_000 ~iters:100_000 (fun () ->
        let key = Pdht_util.Bitkey.of_int (!i land 127) in
        incr i;
        Pdht_dht.Storage.put store ~key ~value:!i ~now:0. ~ttl:3_600.;
        ignore (Pdht_dht.Storage.get store ~key ~now:0.))
  in
  (* Runner scaling: a sweep-sized seed batch (>= 4x the domain count, so
     work-stealing has something to balance) on one domain and on
     [max !jobs 4] domains.  The outputs are asserted identical; only the
     wall-clock may differ.  The pool clamps its worker count to the
     physical cores, so on a single-core box both batches run inline and
     the honest speedup is ~1.0 rather than the oversubscription slowdown
     spawning 4 domains there would cost. *)
  let cores = Domain.recommended_domain_count () in
  let par_jobs = max !jobs 4 in
  let batch_specs =
    let scenario =
      { scenario with Scenario.num_peers = 400; keys = 800; duration = 600. }
    in
    Pdht_core.Run_spec.over_seeds
      (List.init 16 (fun i -> i + 1))
      (Pdht_core.Run_spec.make ~options scenario)
  in
  let timed_batch jobs =
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let results = Pdht_core.Runner.run_all ~jobs batch_specs in
    let wall = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    ( wall,
      g1.Gc.minor_words -. g0.Gc.minor_words,
      Pdht_core.Run_result.reports_exn results )
  in
  let wall_single, minor_single, reports_single = timed_batch 1 in
  let wall_parallel, minor_parallel, reports_parallel = timed_batch par_jobs in
  if reports_single <> reports_parallel then
    failwith "perf: parallel batch diverged from the single-domain batch";
  let speedup = if wall_parallel > 0. then wall_single /. wall_parallel else 0. in
  (* Network model under the same workload (smaller instance so the
     sweep stays interactive): first the contract — a zero-cost net
     (zero latency, zero loss) must reproduce the no-net report
     field-for-field once its own [net.*] additions are set aside —
     then a loss sweep 0 -> 20% showing the selection algorithm
     degrading gracefully (bounded retries, broadcast fallback, no
     unhandled exceptions). *)
  let net_scenario =
    { scenario with Scenario.num_peers = 400; keys = 800; duration = 600. }
  in
  let net_key_ttl = System.derive_key_ttl net_scenario options in
  let net_partial = Strategy.Partial_index { key_ttl = net_key_ttl } in
  let run_with net =
    let options =
      match net with
      | None -> System.Options.without_net options
      | Some cfg -> System.Options.with_net cfg options
    in
    System.run net_scenario net_partial options
  in
  let strip_net (r : System.report) =
    {
      r with
      System.net = None;
      histograms =
        List.filter
          (fun (name, _) ->
            not (String.length name >= 4 && String.sub name 0 4 = "net."))
          r.System.histograms;
    }
  in
  let plain_report = run_with None in
  let zero_cost_report = run_with (Some Pdht_net.Config.zero_cost) in
  let zero_cost_equivalent = strip_net zero_cost_report = plain_report in
  if not zero_cost_equivalent then
    failwith "perf: zero-cost network model diverged from the no-net report";
  let loss_sweep =
    List.map
      (fun loss ->
        let cfg =
          { Pdht_net.Config.default with Pdht_net.Config.loss;
            latency = Pdht_net.Config.Constant 0.02; rpc_timeout = 0.5 }
        in
        (loss, run_with (Some cfg)))
      [ 0.0; 0.05; 0.1; 0.2 ]
  in
  let net_json =
    let row (loss, (r : System.report)) =
      let n =
        match r.System.net with
        | Some n -> n
        | None -> failwith "perf: net-enabled report lacks its net summary"
      in
      let fq = float_of_int (max 1 r.System.queries) in
      Json.Obj
        [
          ("loss", Json.Float loss);
          ("queries", Json.Int r.System.queries);
          ("answered", Json.Int r.System.answered);
          ("answer_rate", Json.Float (float_of_int r.System.answered /. fq));
          ("hit_rate", Json.Float r.System.hit_rate);
          ("messages_per_second", Json.Float r.System.messages_per_second);
          ("messages_sent", Json.Int n.System.messages_sent);
          ("messages_dropped", Json.Int n.System.messages_dropped);
          ("messages_retried", Json.Int n.System.messages_retried);
          ("messages_timed_out", Json.Int n.System.messages_timed_out);
          ("latency_p50", Json.Float n.System.latency_p50);
          ("latency_p95", Json.Float n.System.latency_p95);
          ("latency_p99", Json.Float n.System.latency_p99);
        ]
    in
    Json.Obj
      [
        ("zero_cost_net_equivalent", Json.Bool zero_cost_equivalent);
        ("loss_sweep", Json.List (List.map row loss_sweep));
      ]
  in
  let net_table =
    let t =
      Table.create
        ~columns:
          [ ("loss", Table.Right); ("answer rate", Table.Right);
            ("hit rate", Table.Right); ("sent", Table.Right);
            ("dropped", Table.Right); ("retried", Table.Right);
            ("timed out", Table.Right); ("lat p50 [s]", Table.Right);
            ("lat p99 [s]", Table.Right) ]
    in
    List.iter
      (fun (loss, (r : System.report)) ->
        match r.System.net with
        | None -> ()
        | Some n ->
            Table.add_row t
              [ Printf.sprintf "%.0f%%" (100. *. loss);
                Printf.sprintf "%.3f"
                  (float_of_int r.System.answered
                  /. float_of_int (max 1 r.System.queries));
                Printf.sprintf "%.3f" r.System.hit_rate;
                string_of_int n.System.messages_sent;
                string_of_int n.System.messages_dropped;
                string_of_int n.System.messages_retried;
                string_of_int n.System.messages_timed_out;
                Printf.sprintf "%.3f" n.System.latency_p50;
                Printf.sprintf "%.3f" n.System.latency_p99 ])
      loss_sweep;
    t
  in
  (* Crash faults under the same workload: the contract first — an
     empty fault plan must reproduce the no-fault report
     field-for-field once its own [fault] summary is set aside — then
     E21 in miniature: a crash-fraction sweep 0 -> 50% at mid-run with
     anti-entropy repair, showing dip depth, recovery time and repair
     message overhead. *)
  let run_with_fault plan =
    (* 10 s sample buckets: the dip lives in the first seconds after the
       crash (organic re-insertion repairs popular keys query-by-query),
       so the default 60 s buckets would average it away. *)
    let options = { options with System.sample_every = 10. } in
    let options =
      match plan with
      | None -> System.Options.without_fault options
      | Some p -> System.Options.with_fault p options
    in
    System.run net_scenario net_partial options
  in
  let no_fault_report = run_with_fault None in
  let empty_plan_report = run_with_fault (Some Pdht_fault.Plan.default) in
  let no_fault_equivalent =
    { empty_plan_report with System.fault = None } = no_fault_report
  in
  if not no_fault_equivalent then
    failwith "perf: empty fault plan diverged from the no-fault report";
  let crash_sweep =
    List.map
      (fun fraction ->
        let plan =
          {
            Pdht_fault.Plan.default with
            Pdht_fault.Plan.events =
              [ Pdht_fault.Plan.Crash { peer_fraction = fraction; at = 300. } ];
            repair = Some { Pdht_fault.Plan.every = 30.; min_fraction = 0.5 };
          }
        in
        (fraction, run_with_fault (Some plan)))
      [ 0.0; 0.1; 0.3; 0.5 ]
  in
  let fault_of (r : System.report) =
    match r.System.fault with
    | Some f -> f
    | None -> failwith "perf: fault-enabled report lacks its fault summary"
  in
  let e21 = fault_of (List.assoc 0.3 crash_sweep) in
  let e21_recovered =
    match e21.System.time_to_recover with Some _ -> true | None -> false
  in
  let fault_json =
    let row (fraction, (r : System.report)) =
      let f = fault_of r in
      Json.Obj
        [
          ("crash_fraction", Json.Float fraction);
          ("crashes", Json.Int f.System.crashes);
          ("entries_lost", Json.Int f.System.entries_lost);
          ("content_lost", Json.Int f.System.content_lost);
          ("repair_passes", Json.Int f.System.repair_passes);
          ("repair_messages", Json.Int f.System.repair_messages);
          ( "repair_overhead",
            Json.Float
              (float_of_int f.System.repair_messages
              /. float_of_int (max 1 r.System.total_messages)) );
          ("repaired_items", Json.Int f.System.repaired_items);
          ("repaired_entries", Json.Int f.System.repaired_entries);
          ("pre_fault_rate", Json.Float f.System.pre_fault_rate);
          ("dip_rate", Json.Float f.System.dip_rate);
          ("dip_depth", Json.Float (f.System.pre_fault_rate -. f.System.dip_rate));
          ( "time_to_recover_s",
            match f.System.time_to_recover with
            | Some t -> Json.Float t
            | None -> Json.Null );
        ]
    in
    Json.Obj
      [
        ("no_fault_equivalent", Json.Bool no_fault_equivalent);
        ("crash_sweep", Json.List (List.map row crash_sweep));
        ( "e21_small",
          Json.Obj
            [
              ("crash_fraction", Json.Float 0.3);
              ("pre_fault_rate", Json.Float e21.System.pre_fault_rate);
              ("dip_rate", Json.Float e21.System.dip_rate);
              ( "time_to_recover_s",
                match e21.System.time_to_recover with
                | Some t -> Json.Float t
                | None -> Json.Null );
              ("fault_recovered", Json.Bool e21_recovered);
            ] );
      ]
  in
  let fault_table =
    let t =
      Table.create
        ~columns:
          [ ("crash", Table.Right); ("crashes", Table.Right);
            ("entries lost", Table.Right); ("content lost", Table.Right);
            ("pre", Table.Right); ("dip", Table.Right);
            ("recover [s]", Table.Right); ("repair msgs", Table.Right);
            ("overhead", Table.Right) ]
    in
    List.iter
      (fun (fraction, (r : System.report)) ->
        let f = fault_of r in
        Table.add_row t
          [ Printf.sprintf "%.0f%%" (100. *. fraction);
            string_of_int f.System.crashes;
            string_of_int f.System.entries_lost;
            string_of_int f.System.content_lost;
            Printf.sprintf "%.3f" f.System.pre_fault_rate;
            Printf.sprintf "%.3f" f.System.dip_rate;
            (match f.System.time_to_recover with
            | Some t -> Printf.sprintf "%.0f" t
            | None -> "never");
            string_of_int f.System.repair_messages;
            Printf.sprintf "%.1f%%"
              (100.
              *. float_of_int f.System.repair_messages
              /. float_of_int (max 1 r.System.total_messages)) ])
      crash_sweep;
    t
  in
  (* Selection-policy race (E23 in miniature): contracts first — an
     explicit [Ttl Model_derived] spec must build the very options the
     defaults already carry, and a [Ttl _] run must install no selector
     (its report carries no policy summary; the byte-level golden-file
     gate lives in ci.sh) — then the five-policy race across a
     flash-crowd popularity flip.  The post-shift message rate is the
     empirical Eq.-17 analogue; at least one adaptive policy must beat
     the static model-derived TTL there. *)
  let policy_default_equivalent =
    let tiny = { net_scenario with Scenario.duration = 300. } in
    let r_default = System.run tiny net_partial options in
    let r_alias =
      System.run tiny net_partial
        (System.Options.with_selection_policy
           (Pdht_policy.Selector.Ttl Pdht_policy.Selector.Model_derived) options)
    in
    if r_alias <> r_default then
      failwith "perf: explicit default policy spec diverged from the default options";
    if r_default.System.policy <> None then
      failwith "perf: default-policy run unexpectedly installed a selector";
    true
  in
  let race_scenario =
    (* Updates every 10 minutes make the *model's* TTL conservative
       (Eq. 2 charges staleness), so the statically-derived lease is
       short; the measurement-driven policies re-learn the simulator's
       actual cost structure and recover the headroom. *)
    {
      net_scenario with
      Scenario.name = "flash-race";
      duration = 900.;
      shift = Scenario.Swap_halves_at 450.;
      update_mean_lifetime = Some 300.;
      seed = 2023;
    }
  in
  let race_budget =
    let params =
      {
        Params.default with
        Params.num_peers = race_scenario.Scenario.num_peers;
        keys = race_scenario.Scenario.keys;
        stor = options.System.stor;
        repl = options.System.repl;
        f_qry = race_scenario.Scenario.f_qry;
      }
    in
    max 1 (Index_policy.solve params).Index_policy.max_rank
  in
  let race_policies =
    [
      Psel.Ttl Psel.Model_derived;
      Psel.Ttl Psel.Adaptive;
      Psel.Cost_optimal;
      Psel.Learned;
      Psel.Cache_budget race_budget;
    ]
  in
  let race_rows =
    Experiment.policy_race ~jobs:!jobs ~options ~scenario:race_scenario
      ~policies:race_policies ()
  in
  let static_row, adaptive_race_rows =
    match race_rows with
    | static :: rest -> (static, rest)
    | [] -> assert false
  in
  let policy_adaptive_beats_static =
    List.exists
      (fun (r : Experiment.policy_race_row) ->
        r.Experiment.post_shift_cost < static_row.Experiment.post_shift_cost)
      adaptive_race_rows
  in
  let policy_json =
    let row (r : Experiment.policy_race_row) =
      Json.Obj
        [
          ("policy", Json.String r.Experiment.policy_label);
          ("hit_rate", Json.Float r.Experiment.hit_rate);
          ("messages_per_second", Json.Float r.Experiment.messages_per_second);
          ("post_shift_cost", Json.Float r.Experiment.post_shift_cost);
          ("post_shift_hit_rate", Json.Float r.Experiment.post_shift_hit_rate);
          ("rejected_inserts", Json.Int r.Experiment.rejected_inserts);
          ("indexed_keys_final", Json.Int r.Experiment.indexed_keys_final);
        ]
    in
    Json.Obj
      [
        ("policy_default_equivalent", Json.Bool policy_default_equivalent);
        ("policy_adaptive_beats_static", Json.Bool policy_adaptive_beats_static);
        ("cache_budget", Json.Int race_budget);
        ("shift_time_s", Json.Float 450.);
        ("policy_race", Json.List (List.map row race_rows));
      ]
  in
  let policy_table =
    let t =
      Table.create
        ~columns:
          [ ("policy", Table.Left); ("hit rate", Table.Right);
            ("msg/s", Table.Right); ("post-shift msg/s", Table.Right);
            ("post-shift hits", Table.Right); ("rejected", Table.Right);
            ("indexed", Table.Right) ]
    in
    List.iter
      (fun (r : Experiment.policy_race_row) ->
        Table.add_row t
          [ r.Experiment.policy_label;
            Printf.sprintf "%.3f" r.Experiment.hit_rate;
            Printf.sprintf "%.0f" r.Experiment.messages_per_second;
            Printf.sprintf "%.0f" r.Experiment.post_shift_cost;
            Printf.sprintf "%.3f" r.Experiment.post_shift_hit_rate;
            string_of_int r.Experiment.rejected_inserts;
            string_of_int r.Experiment.indexed_keys_final ])
      race_rows;
    t
  in
  (* Tracing overhead: every simulation now threads span context and
     guards event construction with [Tracer.active]; the contract is
     that a *disabled* tracer (the default for every run without
     --trace-out) costs nothing measurable.  There is no
     pre-instrumentation binary to race against, so measure the
     disabled path twice, interleaved A B A B A B (interleaving cancels
     thermal/scheduler drift) and take best-of-3 each: the two minima
     must agree within 2%.  The enabled walls (full sampling and 1-in-16
     into a counting sink) are recorded for information — they price the
     tracing you opted into, not a regression. *)
  let tracing_cfg =
    {
      Pdht_net.Config.default with
      Pdht_net.Config.latency = Pdht_net.Config.Constant 0.02;
      loss = 0.05;
      rpc_timeout = 0.5;
    }
  in
  let traced_events = ref 0 in
  let timed_traced ~sample () =
    let tracer = Pdht_obs.Tracer.create ~enabled:true () in
    Pdht_obs.Tracer.set_sampling tracer sample;
    Pdht_obs.Tracer.add_sink tracer
      (Pdht_obs.Sink.callback (fun _ -> incr traced_events));
    let obs = Pdht_obs.Context.create ~tracer () in
    let t0 = Unix.gettimeofday () in
    let (_ : System.report) =
      System.run ~obs net_scenario net_partial (System.Options.with_net tracing_cfg options)
    in
    Unix.gettimeofday () -. t0
  in
  let timed_disabled () =
    (* One run is a few tens of ms — below the clock's useful 2%
       resolution — so one sample aggregates several back-to-back
       runs. *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 4 do
      let (_ : System.report) =
        System.run net_scenario net_partial
          (System.Options.with_net tracing_cfg options)
      in
      ()
    done;
    Unix.gettimeofday () -. t0
  in
  let best_a = ref infinity and best_b = ref infinity in
  ignore (timed_disabled ());
  (* warm-up *)
  for _ = 1 to 3 do
    best_a := Float.min !best_a (timed_disabled ());
    best_b := Float.min !best_b (timed_disabled ())
  done;
  let disabled_overhead_frac =
    if !best_a > 0. then Float.max 0. ((!best_b -. !best_a) /. !best_a) else 0.
  in
  let tracing_within_2pct = disabled_overhead_frac <= 0.02 in
  if not tracing_within_2pct then
    Printf.printf
      "WARNING: disabled-tracer re-measure drifted %.1f%% from its interleaved \
       baseline\n"
      (100. *. disabled_overhead_frac);
  traced_events := 0;
  let wall_traced_full = timed_traced ~sample:1 () in
  let events_traced_full = !traced_events in
  traced_events := 0;
  let wall_traced_sampled = timed_traced ~sample:16 () in
  let events_traced_sampled = !traced_events in
  let tracing_json =
    Json.Obj
      [
        ("wall_disabled_s", Json.Float !best_a);
        ("wall_disabled_remeasured_s", Json.Float !best_b);
        ("disabled_overhead_frac", Json.Float disabled_overhead_frac);
        ("tracing_disabled_within_2pct", Json.Bool tracing_within_2pct);
        ("wall_traced_full_s", Json.Float wall_traced_full);
        ("events_traced_full", Json.Int events_traced_full);
        ("wall_traced_1in16_s", Json.Float wall_traced_sampled);
        ("events_traced_1in16", Json.Int events_traced_sampled);
      ]
  in
  let run_name = scenario.Scenario.name ^ "/partial" in
  let json =
    Json.Obj
      [
        ("run", Json.String run_name);
        ("seed", Json.Int scenario.Scenario.seed);
        ("sim_duration_s", Json.Float scenario.Scenario.duration);
        ("wall_time_s", Json.Float wall);
        ("engine_events", Json.Int engine_events);
        ("sim_events_per_second", Json.Float events_per_second);
        ("queries", Json.Int report.System.queries);
        ("total_messages", Json.Int report.System.total_messages);
        ("messages_per_second", Json.Float report.System.messages_per_second);
        ("hit_rate", Json.Float report.System.hit_rate);
        ("query_cost_p50", Json.Float report.System.query_cost_p50);
        ("query_cost_p95", Json.Float report.System.query_cost_p95);
        ("query_cost_p99", Json.Float report.System.query_cost_p99);
        ( "gc",
          Json.Obj
            [
              ("minor_words_run", Json.Float minor_words_run);
              ("minor_collections_run", Json.Int minor_collections_run);
              ("minor_words_per_event", Json.Float minor_words_per_event);
            ] );
        ( "alloc",
          Json.Obj
            [
              ("event_queue_add_pop_minor_words_per_op", Json.Float queue_words_per_op);
              ("flood_scratch_minor_words_per_search", Json.Float flood_scratch_words);
              ("flood_fresh_minor_words_per_search", Json.Float flood_fresh_words);
              ("storage_expire_minor_words_per_op", Json.Float storage_expire_words);
              ("storage_put_get_minor_words_per_op", Json.Float storage_put_get_words);
              ("storage_expire_alloc_free", Json.Bool (storage_expire_words = 0.));
            ] );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (name, s) -> (name, Pdht_obs.Histogram.summary_to_json s))
               report.System.histograms) );
        ( "parallel",
          Json.Obj
            [
              ("cores", Json.Int cores);
              ("batch_specs", Json.Int (List.length batch_specs));
              ("jobs_single", Json.Int 1);
              ("wall_single_s", Json.Float wall_single);
              ("minor_words_single", Json.Float minor_single);
              ("jobs_parallel", Json.Int par_jobs);
              ("jobs_effective", Json.Int (min par_jobs cores));
              ("wall_parallel_s", Json.Float wall_parallel);
              ("minor_words_parallel", Json.Float minor_parallel);
              ("speedup", Json.Float speedup);
              ("identical_reports", Json.Bool true);
            ] );
        ("net", net_json);
        ("fault", fault_json);
        ("policy", policy_json);
        ("tracing", tracing_json);
      ]
  in
  let path = "BENCH_pdht.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "%s: %d engine events in %.2f s wall (%.0f events/s), %.1f minor words/event\n\
     alloc: queue add+pop %.2f w/op, flood %.0f w/search with scratch vs %.0f fresh, \
     storage expire %.2f w/op (alloc-free: %b), put+get %.2f w/op\n\
     runner: %d-spec batch %.2f s on 1 domain vs %.2f s at -j %d (%.2fx on %d core(s), \
     identical output)\n\
     wrote %s\n"
    run_name engine_events wall events_per_second minor_words_per_event queue_words_per_op
    flood_scratch_words flood_fresh_words storage_expire_words
    (storage_expire_words = 0.) storage_put_get_words (List.length batch_specs)
    wall_single wall_parallel par_jobs speedup cores path;
  Printf.printf
    "\nnetwork model (constant 20 ms/hop, 0.5 s timeout, %d retries): \
     zero-cost net == no net: %b\n"
    Pdht_net.Config.default.Pdht_net.Config.rpc_retries zero_cost_equivalent;
  Table.print net_table;
  Printf.printf
    "\nfault injection (crash at t=300, anti-entropy every 30 s): empty plan == no \
     fault: %b; E21-small recovered: %b\n"
    no_fault_equivalent e21_recovered;
  Table.print fault_table;
  Printf.printf
    "\nselection policies (flash crowd, halves swap at t=450): deprecated alias == \
     default: %b; adaptive beats static TTL post-shift: %b (cache budget %d keys)\n"
    policy_default_equivalent policy_adaptive_beats_static race_budget;
  Table.print policy_table;
  Printf.printf
    "\ntracing: disabled %.2f s vs %.2f s re-measured (%.2f%% apart, within 2%%: %b); \
     enabled %.2f s for %d events (1/1), %.2f s for %d events (1/16)\n"
    !best_a !best_b
    (100. *. disabled_overhead_frac)
    tracing_within_2pct wall_traced_full events_traced_full wall_traced_sampled
    events_traced_sampled

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths *)

let section_micro () =
  heading "Micro-benchmarks (Bechamel, monotonic clock)"
    "(per-operation cost of the simulator's hot paths)";
  let open Bechamel in
  let rng0 = Pdht_util.Rng.create ~seed:1 in
  let zipf = Pdht_dist.Zipf.create ~n:40_000 ~alpha:1.2 in
  let chord = Pdht_dht.Chord.create (Pdht_util.Rng.copy rng0) ~members:4_096 in
  let pgrid =
    Pdht_dht.Pgrid.build (Pdht_util.Rng.copy rng0) ~members:4_096 ~leaf_size:1
      ~refs_per_level:3
  in
  let online _ = true in
  let tests =
    [
      Test.make ~name:"rng/bits64"
        (Staged.stage (fun () -> ignore (Pdht_util.Rng.bits64 rng0)));
      Test.make ~name:"zipf/sample-40k"
        (Staged.stage (fun () -> ignore (Pdht_dist.Zipf.sample zipf rng0)));
      Test.make ~name:"chord/lookup-4096"
        (Staged.stage (fun () ->
             let key = Pdht_util.Bitkey.random rng0 in
             ignore
               (Pdht_dht.Chord.lookup chord ~online
                  ~source:(Pdht_util.Rng.int rng0 4_096) ~key)));
      Test.make ~name:"pgrid/lookup-4096"
        (Staged.stage (fun () ->
             let key = Pdht_util.Bitkey.random rng0 in
             ignore
               (Pdht_dht.Pgrid.lookup pgrid rng0 ~online
                  ~source:(Pdht_util.Rng.int rng0 4_096) ~key)));
      Test.make ~name:"event-queue/add+pop"
        (let q = Pdht_sim.Event_queue.create () in
         Staged.stage (fun () ->
             Pdht_sim.Event_queue.add q ~time:(Pdht_util.Rng.unit_float rng0) 0;
             ignore (Pdht_sim.Event_queue.pop q)));
      Test.make ~name:"model/solve-table1"
        (Staged.stage (fun () -> ignore (Index_policy.solve Params.default)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:1_000 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let analysis = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let table =
    Table.create ~columns:[ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let ols = Analyze.one analysis instance raw in
          let time_ns =
            match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
          in
          let pretty =
            if Float.is_nan time_ns then "n/a"
            else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
            else Printf.sprintf "%.1f ns" time_ns
          in
          Table.add_row table [ Test.Elt.name elt; pretty ])
        (Test.elements test))
    tests;
  Table.print table

(* ------------------------------------------------------------------ *)
(* Decade scale sweep: 10^3 .. 10^6 peers.  Per decade, one news-scaled
   partial-index simulation (timed, Gc-measured) plus one raw-DHT
   lookup arm at the full population.  Splices a "scale" object into
   BENCH_pdht.json so ci.sh can gate on it after a [perf] run. *)

let scale_max = ref 1_000_000

let peak_rss_mb () =
  (* VmHWM is the process high-water RSS; 0. when /proc is unreadable. *)
  match open_in "/proc/self/status" with
  | exception _ -> 0.
  | ic ->
      let rec find () =
        match input_line ic with
        | exception End_of_file -> 0.
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf
                (String.sub line 6 (String.length line - 6))
                " %d kB"
                (fun kb -> float_of_int kb /. 1024.)
            else find ()
      in
      let mb = find () in
      close_in ic;
      mb

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* Merge ["KEY": ...] into an existing single-line BENCH_pdht.json
   object (the [perf] section's output); start a fresh object when the
   file is missing or malformed.  A previous block under the same key
   is dropped first — together with everything after it, so splice
   sections in a fixed order (perf writes the base; scale, then churn,
   append) and reruns replace rather than duplicate. *)
let splice_section_json path ~key json_value =
  let base =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      String.trim s)
    else ""
  in
  let marker = "\"" ^ key ^ "\":" in
  let base =
    let m = String.length marker and len = String.length base in
    let rec find i = if i + m > len then -1 else if String.sub base i m = marker then i else find (i + 1) in
    match find 0 with
    | -1 -> base
    | p ->
        let pre = String.trim (String.sub base 0 p) in
        let pre =
          let l = String.length pre in
          if l > 0 && pre.[l - 1] = ',' then String.trim (String.sub pre 0 (l - 1)) else pre
        in
        if pre = "{" then "{}" else pre ^ "}"
  in
  let value_str = Pdht_obs.Json.to_string json_value in
  let len = String.length base in
  let merged =
    if
      len >= 2
      && base.[0] = '{'
      && base.[len - 1] = '}'
      && not (contains_substring base marker)
    then
      String.sub base 0 (len - 1)
      ^ (if String.trim (String.sub base 1 (len - 2)) = "" then "" else ", ")
      ^ marker ^ " " ^ value_str ^ "}"
    else "{" ^ marker ^ " " ^ value_str ^ "}"
  in
  let oc = open_out path in
  output_string oc merged;
  output_char oc '\n';
  close_out oc

let splice_scale_json path scale_json = splice_section_json path ~key:"scale" scale_json

let section_scale () =
  heading
    (Printf.sprintf "Scale sweep: 10^3 -> %d peers (decades)" !scale_max)
    "(per decade: a news-scaled partial-index run -- Gc-measured bytes/peer,\n\
     events/s, mean index-lookup hops -- plus a raw P-Grid lookup arm at the\n\
     full population; bytes/peer must stay flat while hops track log N)";
  let module Json = Pdht_obs.Json in
  let decades =
    List.filter (fun n -> n <= !scale_max) [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  if decades = [] then (
    Printf.printf "scale: --scale-max %d leaves no decade to run\n" !scale_max;
    exit 2);
  let log2 n = log (float_of_int n) /. log 2. in
  let rows =
    List.map
      (fun n ->
        (* Replication grows with the population (paper deployments keep
           repl a population fraction) so per-peer load stays constant;
           the duration shrinks with n to hold the event count at
           roughly 60k queries per decade -- the sweep measures memory
           and per-event cost, not ever-longer simulations. *)
        let repl = max 20 (n / 500) in
        let scenario =
          {
            (Scenario.with_scale Scenario.news_default ~peers:n ~keys:2_000) with
            Scenario.name = Printf.sprintf "scale-%d" n;
            duration = 60_000. /. (float_of_int n /. 30.);
            seed = 2004;
          }
        in
        let options = System.Options.make ~repl ~stor:100 () in
        let key_ttl = System.derive_key_ttl scenario options in
        let strategy = Strategy.Partial_index { key_ttl } in
        let active = System.plan_active_members scenario options strategy in
        (* bytes/peer: compacted live-heap growth across building the
           full system state, divided by the population. *)
        Gc.compact ();
        let live0 = (Gc.stat ()).Gc.live_words in
        let state =
          let rng = Pdht_util.Rng.create ~seed:scenario.Scenario.seed in
          let config =
            Pdht_core.Config.make ~num_peers:n ~active_members:active ~keys:2_000
              ~repl ~stor:100 ~strategy ()
          in
          Pdht_core.Pdht.create rng config
        in
        Gc.compact ();
        let live1 = (Gc.stat ()).Gc.live_words in
        let bytes_per_peer =
          8. *. float_of_int (live1 - live0) /. float_of_int n
        in
        ignore (Sys.opaque_identity state);
        (* Throughput: the timed simulation at this decade. *)
        let obs = Pdht_obs.Context.create () in
        let t0 = Unix.gettimeofday () in
        let report = System.run ~obs scenario strategy options in
        let wall = Unix.gettimeofday () -. t0 in
        let engine_events =
          match
            Pdht_obs.Registry.counter_value_by_name
              (Pdht_obs.Context.registry obs)
              "engine.events_processed"
          with
          | Some c -> c
          | None -> 0
        in
        let events_per_second =
          if wall > 0. then float_of_int engine_events /. wall else 0.
        in
        let sim_hops =
          match List.assoc_opt "dht.hops.p-grid" report.System.histograms with
          | Some s -> s.Pdht_obs.Histogram.mean
          | None -> 0.
        in
        (* Raw-DHT arm: the structured backend alone at the FULL
           population (the simulation's index spans active_members
           only), so the hops-vs-log-N claim is tested at n itself. *)
        let dht_rng = Pdht_util.Rng.create ~seed:(scenario.Scenario.seed + n) in
        let dht =
          Pdht_dht.Dht.create dht_rng ~backend:Pdht_dht.Dht.Pgrid_backend
            ~members:n ()
        in
        let online _ = true in
        let trials = 500 in
        let hops_sum = ref 0 and found = ref 0 in
        for _ = 1 to trials do
          let source = Pdht_util.Rng.int dht_rng n in
          let key = Pdht_util.Bitkey.random dht_rng in
          let o = Pdht_dht.Dht.lookup dht dht_rng ~online ~source ~key in
          hops_sum := !hops_sum + o.Pdht_dht.Dht.hops;
          if o.Pdht_dht.Dht.responsible <> None then incr found
        done;
        let dht_hops = float_of_int !hops_sum /. float_of_int trials in
        let dht_success = float_of_int !found /. float_of_int trials in
        Printf.printf
          "  n=%-8d repl=%-4d active=%-6d %8.0f B/peer  %9.0f events/s  \
           sim hops %.2f  dht hops %.2f (log2 n = %.1f, success %.2f)  wall %.1f s\n\
           %!"
          n repl active bytes_per_peer events_per_second sim_hops dht_hops
          (log2 n) dht_success wall;
        (n, repl, active, bytes_per_peer, events_per_second, sim_hops, dht_hops,
         dht_success, wall))
      decades
  in
  let bytes = List.map (fun (_, _, _, b, _, _, _, _, _) -> b) rows in
  let bytes_per_peer_flat =
    (* Flat-representation invariant: bytes/peer must not creep up
       decade over decade (10% slack covers hash-table rounding). *)
    let rec ok = function
      | b1 :: (b2 :: _ as rest) -> b2 <= 1.10 *. b1 && ok rest
      | _ -> true
    in
    ok bytes
  in
  let ratios =
    List.map (fun (n, _, _, _, _, _, h, _, _) -> h /. log2 n) rows
  in
  let hops_track_log_n =
    match ratios with
    | [] -> false
    | r0 :: _ -> List.for_all (fun r -> r >= 0.4 *. r0 && r <= 2.0 *. r0) ratios
  in
  let rss = peak_rss_mb () in
  let row_json (n, repl, active, b, eps, sh, dh, ds, wall) =
    Json.Obj
      [
        ("peers", Json.Int n);
        ("repl", Json.Int repl);
        ("active_members", Json.Int active);
        ("bytes_per_peer", Json.Float b);
        ("events_per_second", Json.Float eps);
        ("sim_mean_hops", Json.Float sh);
        ("dht_mean_hops", Json.Float dh);
        ("dht_lookup_success", Json.Float ds);
        ("wall_s", Json.Float wall);
      ]
  in
  let scale_json =
    Json.Obj
      [
        ("decades", Json.List (List.map row_json rows));
        ("bytes_per_peer_flat", Json.Bool bytes_per_peer_flat);
        ("hops_track_log_n", Json.Bool hops_track_log_n);
        ("peak_rss_mb", Json.Float rss);
      ]
  in
  let path = "BENCH_pdht.json" in
  splice_scale_json path scale_json;
  Printf.printf
    "bytes/peer flat across decades: %b; dht hops track log N: %b; peak RSS %.0f \
     MB\nspliced \"scale\" into %s\n"
    bytes_per_peer_flat hops_track_log_n rss path

(* ------------------------------------------------------------------ *)
(* E26: churn-hardened routing.  Living vs frozen k-buckets under
   heavy-tailed session churn, one decade of mean session length per
   row triple; splices a "churn" object into BENCH_pdht.json so ci.sh
   can gate on it (live must beat frozen on stale-route rate at equal
   maintenance spend, and stay near the no-churn success ceiling). *)

let section_churn_routing () =
  heading "E26 - churn-hardened routing: live vs frozen k-buckets"
    "(per decade of mean session length: a no-churn baseline, living\n\
     k-buckets with replacement caches + liveness probing + bucket\n\
     refresh, and frozen tables on the live arm's measured maintenance\n\
     budget; cRtn is measured, not assumed)";
  let module Json = Pdht_obs.Json in
  let rows =
    Experiment.churn_routing ~jobs:!jobs ~seed:2026 ~members:600 ~duration:600.
      ~mean_sessions:[ 60.; 600.; 6_000. ] ()
  in
  let t =
    Table.create
      ~columns:
        [ ("mean session", Table.Right); ("arm", Table.Left); ("lookups", Table.Right);
          ("success", Table.Right); ("hops", Table.Right); ("stale-route", Table.Right);
          ("maint msgs", Table.Right); ("cRtn msg/peer/s", Table.Right) ]
  in
  List.iter
    (fun (r : Experiment.churn_routing_row) ->
      Table.add_row t
        [ Printf.sprintf "%.0fs" r.Experiment.mean_session;
          r.Experiment.arm;
          string_of_int r.Experiment.attempted;
          Printf.sprintf "%.3f" r.Experiment.success_rate;
          Printf.sprintf "%.2f" r.Experiment.mean_hops;
          Printf.sprintf "%.4f" r.Experiment.stale_route_rate;
          string_of_int r.Experiment.maintenance_messages;
          Printf.sprintf "%.3f" r.Experiment.crtn ])
    rows;
  Table.print t;
  let row_json (r : Experiment.churn_routing_row) =
    Json.Obj
      [
        ("mean_session", Json.Float r.Experiment.mean_session);
        ("arm", Json.String r.Experiment.arm);
        ("attempted", Json.Int r.Experiment.attempted);
        ("success_rate", Json.Float r.Experiment.success_rate);
        ("mean_hops", Json.Float r.Experiment.mean_hops);
        ("stale_route_rate", Json.Float r.Experiment.stale_route_rate);
        ("maintenance_messages", Json.Int r.Experiment.maintenance_messages);
        ("crtn", Json.Float r.Experiment.crtn);
      ]
  in
  (* Per-decade contracts, spliced as booleans for the CI gate: the
     living tables must win the stale-route race at equal maintenance
     spend while staying within 5% of the no-churn success ceiling. *)
  let rec triples = function
    | b :: l :: f :: rest -> (b, l, f) :: triples rest
    | _ -> []
  in
  let ts = triples rows in
  let all f = ts <> [] && List.for_all f ts in
  let stale_ok =
    all (fun ((_, l, f) : Experiment.churn_routing_row * _ * _) ->
        l.Experiment.stale_route_rate < f.Experiment.stale_route_rate)
  in
  let success_ok =
    all (fun (b, l, _) ->
        l.Experiment.success_rate >= 0.95 *. b.Experiment.success_rate)
  in
  let budget_ok =
    all (fun (_, l, f) ->
        l.Experiment.maintenance_messages = f.Experiment.maintenance_messages)
  in
  let path = "BENCH_pdht.json" in
  splice_section_json path ~key:"churn"
    (Json.Obj
       [
         ("rows", Json.List (List.map row_json rows));
         ("live_beats_frozen_stale_route", Json.Bool stale_ok);
         ("live_within_success_floor", Json.Bool success_ok);
         ("equal_maintenance_budget", Json.Bool budget_ok);
       ]);
  Printf.printf "spliced \"churn\" into %s\n" path

let sections =
  [
    ("table1", section_table1);
    ("fig1", section_fig1);
    ("fig2", section_fig2);
    ("fig3", section_fig3);
    ("fig4", section_fig4);
    ("ttl_sensitivity", section_ttl_sensitivity);
    ("sim_vs_model", section_sim_vs_model);
    ("fullscale", section_fullscale);
    ("sim_adaptivity", section_sim_adaptivity);
    ("ablation", section_ablation);
    ("ttl_tuning", section_ttl_tuning);
    ("backends_e2e", section_backends_e2e);
    ("churn", section_churn);
    ("workloads", section_workloads);
    ("seeds", section_seeds);
    ("bootstrap", section_bootstrap);
    ("membership", section_membership);
    ("diurnal", section_diurnal);
    ("eviction", section_eviction);
    ("arity", section_arity);
    ("replication_planning", section_replication_planning);
    ("perf", section_perf);
    ("micro", section_micro);
    ("scale", section_scale);
    ("churn_routing", section_churn_routing);
  ]

let set_jobs value =
  match int_of_string_opt value with
  | Some n when n >= 1 -> jobs := n
  | Some _ | None ->
      Printf.eprintf "-j/--jobs needs a positive integer, got %S\n" value;
      exit 2

let set_scale_max value =
  match int_of_string_opt value with
  | Some n when n >= 1 -> scale_max := n
  | Some _ | None ->
      Printf.eprintf "--scale-max needs a positive integer, got %S\n" value;
      exit 2

(* [-j N] / [--jobs N] / [--jobs=N] and [--scale-max N] / [--scale-max=N]
   may appear anywhere among the section names. *)
let rec strip_jobs acc = function
  | [] -> List.rev acc
  | ("-j" | "--jobs") :: value :: rest ->
      set_jobs value;
      strip_jobs acc rest
  | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "-j/--jobs needs a value\n";
      exit 2
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      set_jobs (String.sub arg 7 (String.length arg - 7));
      strip_jobs acc rest
  | "--scale-max" :: value :: rest ->
      set_scale_max value;
      strip_jobs acc rest
  | [ "--scale-max" ] ->
      Printf.eprintf "--scale-max needs a value\n";
      exit 2
  | arg :: rest
    when String.length arg > 12 && String.sub arg 0 12 = "--scale-max=" ->
      set_scale_max (String.sub arg 12 (String.length arg - 12));
      strip_jobs acc rest
  | arg :: rest -> strip_jobs (arg :: acc) rest

let () =
  let names = strip_jobs [] (List.tl (Array.to_list Sys.argv)) in
  let requested = match names with [] -> List.map fst sections | names -> names in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    requested
